package sketch

import (
	"errors"
	"fmt"
	"math"
)

// CountMin is a count-min sketch: a depth×width matrix of counters
// where each key increments one counter per row (chosen by that row's
// hash) and is estimated by the minimum over its row counters. Hash
// collisions only ever inflate counters, so:
//
//	Estimate(k) >= true count of k            (always)
//	Estimate(k) <= true count of k + ε·N      (with probability >= 1−δ)
//
// where N is the total weight added and (ε, δ) follow from the shape:
// width = ⌈e/ε⌉, depth = ⌈ln(1/δ)⌉.
//
// With Conservative set, Update raises only the counters that are at
// the current minimum (conservative update), which tightens estimates
// substantially on skewed streams at the cost of merge exactness:
// conservatively-updated shards merge to a valid upper bound, not to
// the single-sketch result. Leave it off when shard-merge bit-equality
// matters.
//
// CountMin is not safe for concurrent use; the fleet model is one
// sketch per shard, merged after the fact.
type CountMin struct {
	// Conservative enables conservative update (see type doc). Toggle
	// before the first Update.
	Conservative bool

	width, depth int
	seed         uint64
	cells        []uint64 // depth rows of width cells, row-major
	updates      uint64
	weight       uint64
}

// NewCountMin sizes a sketch from the error knobs: estimates are
// within ε·N of truth with probability at least 1−δ. Both must lie in
// (0, 1).
func NewCountMin(eps, delta float64, seed uint64) (*CountMin, error) {
	if !(eps > 0 && eps < 1) {
		return nil, fmt.Errorf("sketch: count-min epsilon %g outside (0, 1)", eps)
	}
	if !(delta > 0 && delta < 1) {
		return nil, fmt.Errorf("sketch: count-min delta %g outside (0, 1)", delta)
	}
	width := int(math.Ceil(math.E / eps))
	depth := int(math.Ceil(math.Log(1 / delta)))
	if depth < 1 {
		depth = 1
	}
	return NewCountMinShape(width, depth, seed)
}

// NewCountMinShape builds a sketch with an explicit shape, for callers
// that size by memory budget rather than error target. The resulting
// guarantees are ε = e/width, δ = exp(−depth).
func NewCountMinShape(width, depth int, seed uint64) (*CountMin, error) {
	if width < 1 || depth < 1 {
		return nil, fmt.Errorf("sketch: count-min shape %dx%d invalid", depth, width)
	}
	return &CountMin{
		width: width,
		depth: depth,
		seed:  seed,
		cells: make([]uint64, width*depth),
	}, nil
}

// Width returns the per-row counter count.
func (c *CountMin) Width() int { return c.width }

// Depth returns the number of hash rows.
func (c *CountMin) Depth() int { return c.depth }

// Epsilon returns the additive-error fraction the shape guarantees:
// estimates exceed truth by at most Epsilon()·Weight() with
// probability 1−Delta().
func (c *CountMin) Epsilon() float64 { return math.E / float64(c.width) }

// Delta returns the failure probability of the epsilon bound.
func (c *CountMin) Delta() float64 { return math.Exp(-float64(c.depth)) }

// Updates returns the number of Update calls.
func (c *CountMin) Updates() uint64 { return c.updates }

// Weight returns the total weight added (the N of the ε·N bound).
func (c *CountMin) Weight() uint64 { return c.weight }

// Bytes returns the counter-array footprint in bytes.
func (c *CountMin) Bytes() int { return 8 * len(c.cells) }

// Update adds n to key's count. It allocates nothing.
func (c *CountMin) Update(key uint64, n uint64) {
	if n == 0 {
		return
	}
	c.updates++
	c.weight += n
	h1, h2 := hashPair(key, c.seed)
	w := uint64(c.width)
	if c.Conservative {
		// Conservative update: raise every counter to min+n, touching
		// only those below it. Two passes over depth rows, no state.
		est := uint64(math.MaxUint64)
		h := h1
		for row := 0; row < c.depth; row++ {
			if v := c.cells[row*c.width+int(h%w)]; v < est {
				est = v
			}
			h += h2
		}
		target := est + n
		h = h1
		for row := 0; row < c.depth; row++ {
			cell := &c.cells[row*c.width+int(h%w)]
			if *cell < target {
				*cell = target
			}
			h += h2
		}
		return
	}
	h := h1
	for row := 0; row < c.depth; row++ {
		c.cells[row*c.width+int(h%w)] += n
		h += h2
	}
}

// Estimate returns the sketch's count for key: the minimum over the
// key's row counters. It allocates nothing.
func (c *CountMin) Estimate(key uint64) uint64 {
	h1, h2 := hashPair(key, c.seed)
	w := uint64(c.width)
	est := uint64(math.MaxUint64)
	h := h1
	for row := 0; row < c.depth; row++ {
		if v := c.cells[row*c.width+int(h%w)]; v < est {
			est = v
		}
		h += h2
	}
	return est
}

// ErrShapeMismatch rejects merging sketches of different shapes or
// seeds — their hash lanes do not line up, so cell-wise combination
// would be meaningless.
var ErrShapeMismatch = errors.New("sketch: merge shape/seed mismatch")

// Merge adds o cell-wise into c. Both sketches must share shape and
// seed. For plain (non-conservative) sketches the merge is exact:
// merging per-shard sketches yields bit-for-bit the sketch one pass
// over the combined stream would build. Conservatively-updated shards
// merge to a valid upper bound instead.
func (c *CountMin) Merge(o *CountMin) error {
	if c.width != o.width || c.depth != o.depth || c.seed != o.seed {
		return ErrShapeMismatch
	}
	for i, v := range o.cells {
		c.cells[i] += v
	}
	c.updates += o.updates
	c.weight += o.weight
	return nil
}

// Reset clears every counter in place, starting a new interval without
// releasing or reallocating the array.
func (c *CountMin) Reset() {
	clear(c.cells)
	c.updates = 0
	c.weight = 0
}
