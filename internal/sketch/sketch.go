// Package sketch provides the streaming data structures behind MDN's
// million-flow analytics: a count-min sketch (heavy-hitter and
// port-scan fan-out counting), a HyperLogLog distinct counter
// (superspreader and DDoS-victim detection), and a space-saving top-k
// tracker. Exact per-key state explodes at production traffic volumes;
// these trade bounded, tunable error for constant memory.
//
// Design rules shared by every structure in the package:
//
//   - Explicit error knobs. The count-min sketch is sized from (ε, δ):
//     estimates exceed the true count by at most εN (N = total stream
//     weight) with probability at least 1−δ. HyperLogLog is sized from
//     a precision p: the relative standard error is 1.04/√2ᵖ. The
//     top-k tracker reports a per-item error bound alongside each
//     count.
//   - Zero-allocation hot paths. Update/Add/Estimate touch only
//     preallocated flat arrays; nothing on the per-packet path asks
//     the allocator for memory.
//   - Seeded deterministic hashing. Every structure hashes through
//     splitmix64 finalisers keyed by an explicit seed, so runs replay
//     exactly and sharded sketches built from the same seed merge
//     losslessly.
//   - Mergeability. Sketches of the same shape and seed merge
//     cell-wise (count-min: sum, HLL: max, top-k: count-sum union),
//     matching the fleet's shard model: per-worker sketches combine
//     into exactly the sketch a single pass would have built (for CMS
//     with plain update and HLL, bit-for-bit).
package sketch

// mix64 is the splitmix64 finaliser: a fast, invertible 64-bit mixer
// whose output passes strong avalanche tests. All hashing in this
// package routes through it, keyed by XORing a seed into the input —
// deterministic across runs and platforms.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashPair derives the two base hashes for Kirsch–Mitzenmacher double
// hashing: row i of a depth-d sketch uses h1 + i·h2, which preserves
// the count-min guarantees while costing one mix per update instead of
// d independent hashes. h2 is forced odd so successive rows never
// collapse onto one lane of a power-of-two table.
func hashPair(key, seed uint64) (h1, h2 uint64) {
	h1 = mix64(key ^ seed)
	h2 = mix64(h1^0x9e3779b97f4a7c15) | 1
	return h1, h2
}
