package sketch

import (
	"fmt"
	"math"
	"math/bits"
)

// HyperLogLog estimates the number of distinct keys added. Each key's
// hash selects one of m = 2ᵖ registers with its top p bits and the
// register keeps the maximum "rank" (leading-zero count + 1) seen in
// the remaining bits; the harmonic mean of the registers estimates the
// cardinality with relative standard error 1.04/√m.
//
// The implementation uses 64-bit hashes throughout, so the classic
// large-range correction (a 32-bit hash-collision artefact) is
// unnecessary; the small-range regime falls back to linear counting
// over the empty registers, as in the original paper.
//
// Estimate recomputes from the registers in index order every call, so
// its value is a pure function of register state: shards merged with
// Merge (register-wise max) estimate bit-for-bit what a single sketch
// fed the union stream would.
type HyperLogLog struct {
	p       uint8
	seed    uint64
	regs    []uint8
	updates uint64
}

// MinPrecision and MaxPrecision bound NewHyperLogLog's p: 2⁴ = 16
// registers (±26% error) up to 2¹⁸ = 256 KiB of registers (±0.2%).
const (
	MinPrecision = 4
	MaxPrecision = 18
)

// NewHyperLogLog builds a sketch with 2ᵖ one-byte registers.
func NewHyperLogLog(p uint8, seed uint64) (*HyperLogLog, error) {
	if p < MinPrecision || p > MaxPrecision {
		return nil, fmt.Errorf("sketch: HLL precision %d outside [%d, %d]", p, MinPrecision, MaxPrecision)
	}
	return &HyperLogLog{p: p, seed: seed, regs: make([]uint8, 1<<p)}, nil
}

// Precision returns p.
func (h *HyperLogLog) Precision() uint8 { return h.p }

// Registers returns m = 2ᵖ.
func (h *HyperLogLog) Registers() int { return len(h.regs) }

// StdError returns the estimator's relative standard error 1.04/√m.
func (h *HyperLogLog) StdError() float64 { return 1.04 / math.Sqrt(float64(len(h.regs))) }

// Updates returns the number of Add calls.
func (h *HyperLogLog) Updates() uint64 { return h.updates }

// Bytes returns the register-array footprint in bytes.
func (h *HyperLogLog) Bytes() int { return len(h.regs) }

// Add observes one key. It allocates nothing.
func (h *HyperLogLog) Add(key uint64) {
	h.updates++
	x := mix64(key ^ h.seed)
	idx := x >> (64 - h.p)
	rest := x<<h.p | 1<<(h.p-1) // low bit guard keeps rank <= 64-p+1
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	if rank > h.regs[idx] {
		h.regs[idx] = rank
	}
}

// alpha is the harmonic-mean bias constant α_m.
func alpha(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	}
	return 0.7213 / (1 + 1.079/float64(m))
}

// Estimate returns the estimated distinct-key count. It reads the
// registers in index order, so the result depends only on register
// state (merge-stable), and allocates nothing.
func (h *HyperLogLog) Estimate() float64 {
	m := float64(len(h.regs))
	sum := 0.0
	zeros := 0
	for _, r := range h.regs {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	e := alpha(len(h.regs)) * m * m / sum
	if e <= 2.5*m && zeros > 0 {
		// Small-range regime: linear counting over empty registers is
		// more accurate than the raw estimator.
		return m * math.Log(m/float64(zeros))
	}
	return e
}

// Count returns Estimate rounded to the nearest integer.
func (h *HyperLogLog) Count() int { return int(math.Round(h.Estimate())) }

// Merge takes the register-wise maximum of o into h. Both sketches
// must share precision and seed. The merged registers are exactly
// those of a single sketch fed both streams, so Estimate agrees
// bit-for-bit.
func (h *HyperLogLog) Merge(o *HyperLogLog) error {
	if h.p != o.p || h.seed != o.seed {
		return ErrShapeMismatch
	}
	for i, r := range o.regs {
		if r > h.regs[i] {
			h.regs[i] = r
		}
	}
	h.updates += o.updates
	return nil
}

// Reset clears every register in place.
func (h *HyperLogLog) Reset() {
	clear(h.regs)
	h.updates = 0
}
