package sketch

import "fmt"

// TopK is a space-saving top-k tracker (Metwally et al.'s
// stream-summary with a binary-heap implementation): it keeps exactly
// k counters; a new key arriving with all counters occupied evicts the
// minimum counter, inheriting its count as overestimation error. The
// guarantees per tracked item are:
//
//	Count - Err <= true count <= Count
//
// and any key whose true count exceeds the minimum tracked count is
// guaranteed to be tracked — so heavy hitters above N/k can never be
// missed, only over-reported.
//
// Update touches only the preallocated entry array and the key index
// map (replacements delete one key and insert another, which Go maps
// satisfy from the freed slot — no steady-state growth), so the hot
// path allocates nothing once the tracker is full.
type TopK struct {
	k       int
	entries []tkEntry      // min-heap on (count, key)
	index   map[uint64]int // key -> heap position
	updates uint64
}

type tkEntry struct {
	key   uint64
	count uint64
	err   uint64
}

// NewTopK builds a tracker with capacity for k keys.
func NewTopK(k int) (*TopK, error) {
	if k < 1 {
		return nil, fmt.Errorf("sketch: top-k capacity %d invalid", k)
	}
	return &TopK{
		k:       k,
		entries: make([]tkEntry, 0, k),
		index:   make(map[uint64]int, k),
	}, nil
}

// K returns the capacity.
func (t *TopK) K() int { return t.k }

// Len returns the number of tracked keys.
func (t *TopK) Len() int { return len(t.entries) }

// Updates returns the number of Update calls.
func (t *TopK) Updates() uint64 { return t.updates }

// Bytes returns the tracker's footprint in bytes: the entry array plus
// an estimate of the index map (two words per entry).
func (t *TopK) Bytes() int { return t.k * (24 + 16) }

// less orders the heap by count, breaking ties on key so heap shape is
// a pure function of the update history (deterministic across runs).
func (t *TopK) less(i, j int) bool {
	if t.entries[i].count != t.entries[j].count {
		return t.entries[i].count < t.entries[j].count
	}
	return t.entries[i].key < t.entries[j].key
}

func (t *TopK) swap(i, j int) {
	t.entries[i], t.entries[j] = t.entries[j], t.entries[i]
	t.index[t.entries[i].key] = i
	t.index[t.entries[j].key] = j
}

func (t *TopK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.less(i, parent) {
			return
		}
		t.swap(i, parent)
		i = parent
	}
}

func (t *TopK) siftDown(i int) {
	n := len(t.entries)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		min := left
		if right := left + 1; right < n && t.less(right, left) {
			min = right
		}
		if !t.less(min, i) {
			return
		}
		t.swap(i, min)
		i = min
	}
}

// Update adds n to key's count, evicting the minimum tracked key if
// the tracker is full and key is new.
func (t *TopK) Update(key uint64, n uint64) {
	if n == 0 {
		return
	}
	t.updates++
	if i, ok := t.index[key]; ok {
		t.entries[i].count += n
		t.siftDown(i)
		return
	}
	if len(t.entries) < t.k {
		t.entries = append(t.entries, tkEntry{key: key, count: n})
		i := len(t.entries) - 1
		t.index[key] = i
		t.siftUp(i)
		return
	}
	// Space-saving eviction: the newcomer inherits the minimum count
	// as overestimation error.
	min := &t.entries[0]
	delete(t.index, min.key)
	t.index[key] = 0
	min.err = min.count
	min.count += n
	min.key = key
	t.siftDown(0)
}

// Estimate returns the tracked (count, err) for key. ok is false when
// the key is not tracked; its true count is then at most the minimum
// tracked count.
func (t *TopK) Estimate(key uint64) (count, err uint64, ok bool) {
	i, ok := t.index[key]
	if !ok {
		return 0, 0, false
	}
	return t.entries[i].count, t.entries[i].err, true
}

// MinCount returns the smallest tracked count (0 when not yet full) —
// the ceiling on any untracked key's true count.
func (t *TopK) MinCount() uint64 {
	if len(t.entries) < t.k {
		return 0
	}
	return t.entries[0].count
}

// Item is one tracked key with its count bounds.
type Item struct {
	// Key is the tracked key.
	Key uint64
	// Count is the tracked (over-)count: true count <= Count.
	Count uint64
	// Err bounds the overestimate: true count >= Count − Err.
	Err uint64
}

// Items returns the tracked keys sorted by descending count (ties on
// ascending key), so reports are deterministic.
func (t *TopK) Items() []Item {
	out := make([]Item, len(t.entries))
	for i, e := range t.entries {
		out[i] = Item{Key: e.key, Count: e.count, Err: e.err}
	}
	// Insertion sort: k is small and the heap is nearly ordered.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && (out[j].Count > out[j-1].Count ||
			(out[j].Count == out[j-1].Count && out[j].Key < out[j-1].Key)); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Merge folds o into t: counts and error bounds of shared keys sum,
// new keys enter through the same space-saving eviction, largest
// first. The result keeps the space-saving invariants (counts remain
// upper bounds, Count−Err lower bounds) but, unlike CountMin and
// HyperLogLog, is not guaranteed identical to a single-pass tracker.
func (t *TopK) Merge(o *TopK) error {
	if t.k != o.k {
		return ErrShapeMismatch
	}
	for _, it := range o.Items() {
		if i, ok := t.index[it.Key]; ok {
			t.entries[i].count += it.Count
			t.entries[i].err += it.Err
			t.siftDown(i)
			continue
		}
		if len(t.entries) < t.k {
			t.entries = append(t.entries, tkEntry{key: it.Key, count: it.Count, err: it.Err})
			i := len(t.entries) - 1
			t.index[it.Key] = i
			t.siftUp(i)
			continue
		}
		min := &t.entries[0]
		if it.Count <= min.count {
			// Everything still in o is no larger; the merged tracker
			// cannot improve on its current minimum.
			if it.Count == min.count {
				continue
			}
			break
		}
		delete(t.index, min.key)
		t.index[it.Key] = 0
		min.err = min.count + it.Err
		min.count += it.Count
		min.key = it.Key
		t.siftDown(0)
	}
	t.updates += o.updates
	return nil
}

// Reset forgets every tracked key in place.
func (t *TopK) Reset() {
	t.entries = t.entries[:0]
	clear(t.index)
	t.updates = 0
}
