package sketch

import (
	"sort"
	"testing"
)

func TestTopKTracksExactWhenUnderCapacity(t *testing.T) {
	tk, err := NewTopK(16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		tk.Update(uint64(i), uint64(i+1))
	}
	for i := 0; i < 8; i++ {
		count, errBound, ok := tk.Estimate(uint64(i))
		if !ok || count != uint64(i+1) || errBound != 0 {
			t.Fatalf("key %d: (%d, %d, %v)", i, count, errBound, ok)
		}
	}
	if tk.MinCount() != 0 {
		t.Fatalf("under capacity MinCount = %d", tk.MinCount())
	}
}

// TestTopKSpaceSavingBounds checks the two-sided guarantee on a skewed
// stream: tracked counts are upper bounds, Count-Err lower bounds, and
// every true heavy hitter above the minimum tracked count is present.
func TestTopKSpaceSavingBounds(t *testing.T) {
	const k = 64
	tk, _ := NewTopK(k)
	exact := make(map[uint64]uint64)
	stream := zipfStream(t, 23, 5000, 100000, 1.4)
	for _, key := range stream {
		tk.Update(key, 1)
		exact[key]++
	}
	for _, it := range tk.Items() {
		truth := exact[it.Key]
		if it.Count < truth {
			t.Fatalf("key %d: count %d < true %d", it.Key, it.Count, truth)
		}
		if it.Count-it.Err > truth {
			t.Fatalf("key %d: guaranteed %d > true %d", it.Key, it.Count-it.Err, truth)
		}
	}
	// Any key whose true count beats the tracked minimum must be in.
	min := tk.MinCount()
	for key, truth := range exact {
		if truth > min {
			if _, _, ok := tk.Estimate(key); !ok {
				t.Fatalf("key %d (true %d > min %d) evicted", key, truth, min)
			}
		}
	}
}

func TestTopKItemsDeterministicOrder(t *testing.T) {
	tk, _ := NewTopK(8)
	for _, k := range []uint64{5, 3, 9, 3, 5, 5, 7} {
		tk.Update(k, 1)
	}
	items := tk.Items()
	if !sort.SliceIsSorted(items, func(i, j int) bool {
		if items[i].Count != items[j].Count {
			return items[i].Count > items[j].Count
		}
		return items[i].Key < items[j].Key
	}) {
		t.Fatalf("items out of order: %+v", items)
	}
	if items[0].Key != 5 || items[0].Count != 3 {
		t.Fatalf("head = %+v", items[0])
	}
}

func TestTopKMergeKeepsBounds(t *testing.T) {
	const k = 32
	a, _ := NewTopK(k)
	b, _ := NewTopK(k)
	exact := make(map[uint64]uint64)
	stream := zipfStream(t, 31, 2000, 60000, 1.3)
	for i, key := range stream {
		if i%2 == 0 {
			a.Update(key, 1)
		} else {
			b.Update(key, 1)
		}
		exact[key]++
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Len() != k {
		t.Fatalf("merged len = %d", a.Len())
	}
	for _, it := range a.Items() {
		truth := exact[it.Key]
		if it.Count < truth {
			t.Fatalf("merged key %d: count %d < true %d", it.Key, it.Count, truth)
		}
		if it.Err < it.Count-truth {
			t.Fatalf("merged key %d: err %d does not cover overestimate %d",
				it.Key, it.Err, it.Count-truth)
		}
	}
}

func TestTopKMergeRejectsMismatch(t *testing.T) {
	a, _ := NewTopK(8)
	b, _ := NewTopK(16)
	if err := a.Merge(b); err != ErrShapeMismatch {
		t.Fatalf("err = %v", err)
	}
}

func TestTopKResetReuses(t *testing.T) {
	tk, _ := NewTopK(8)
	for i := 0; i < 100; i++ {
		tk.Update(uint64(i), 1)
	}
	tk.Reset()
	if tk.Len() != 0 || tk.Updates() != 0 {
		t.Fatal("reset left state")
	}
	tk.Update(4, 2)
	if c, _, ok := tk.Estimate(4); !ok || c != 2 {
		t.Fatalf("post-reset estimate = %d, %v", c, ok)
	}
}

// TestTopKSteadyStateAllocs: once full, updates (hits and evictions)
// touch only preallocated state.
func TestTopKSteadyStateAllocs(t *testing.T) {
	tk, _ := NewTopK(128)
	for i := 0; i < 4096; i++ {
		tk.Update(uint64(i), 1)
	}
	k := uint64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		tk.Update(k%4096, 1) // mix of tracked hits and evictions
		k += 13
	})
	if allocs != 0 {
		t.Fatalf("steady-state Update allocates %.1f/op", allocs)
	}
}
