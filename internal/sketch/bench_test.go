package sketch

import (
	"math/rand"
	"testing"
)

// BenchmarkSketchUpdate measures the per-key cost of each structure's
// hot path over a pre-generated Zipf key stream. Every sub-benchmark
// must report 0 allocs/op — CI gates on it.
func BenchmarkSketchUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	z := rand.NewZipf(rng, 1.2, 1, 1<<20)
	keys := make([]uint64, 1<<16)
	for i := range keys {
		keys[i] = z.Uint64()
	}
	mask := len(keys) - 1

	b.Run("cms", func(b *testing.B) {
		c, _ := NewCountMin(0.001, 0.01, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Update(keys[i&mask], 1)
		}
	})
	b.Run("cms-conservative", func(b *testing.B) {
		c, _ := NewCountMin(0.001, 0.01, 1)
		c.Conservative = true
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Update(keys[i&mask], 1)
		}
	})
	b.Run("cms-estimate", func(b *testing.B) {
		c, _ := NewCountMin(0.001, 0.01, 1)
		for _, k := range keys {
			c.Update(k, 1)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = c.Estimate(keys[i&mask])
		}
	})
	b.Run("hll", func(b *testing.B) {
		h, _ := NewHyperLogLog(14, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Add(keys[i&mask])
		}
	})
	b.Run("topk", func(b *testing.B) {
		tk, _ := NewTopK(1024)
		for _, k := range keys {
			tk.Update(k, 1)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tk.Update(keys[i&mask], 1)
		}
	})
}
