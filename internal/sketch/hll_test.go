package sketch

import (
	"math"
	"testing"
)

func TestHLLPrecisionBounds(t *testing.T) {
	if _, err := NewHyperLogLog(3, 1); err == nil {
		t.Fatal("precision 3 accepted")
	}
	if _, err := NewHyperLogLog(19, 1); err == nil {
		t.Fatal("precision 19 accepted")
	}
	h, err := NewHyperLogLog(12, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.Registers() != 4096 || h.Bytes() != 4096 {
		t.Fatalf("m = %d bytes = %d, want 4096", h.Registers(), h.Bytes())
	}
}

// TestHLLMillionDistinct is the headline accuracy bound: at 10^6
// distinct keys the relative error stays within a few standard errors
// of the 1.04/sqrt(m) bound.
func TestHLLMillionDistinct(t *testing.T) {
	h, err := NewHyperLogLog(14, 99)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1_000_000
	for i := 0; i < n; i++ {
		h.Add(uint64(i))
	}
	relErr := math.Abs(h.Estimate()-n) / n
	if bound := 3 * h.StdError(); relErr > bound {
		t.Fatalf("relative error %.4f exceeds 3 sigma = %.4f", relErr, bound)
	}
}

// TestHLLAccuracyAcrossScales sweeps cardinalities across the linear
// counting / raw estimator crossover.
func TestHLLAccuracyAcrossScales(t *testing.T) {
	for _, n := range []int{100, 1000, 10000, 100000} {
		h, _ := NewHyperLogLog(12, 5)
		for i := 0; i < n; i++ {
			// Spread keys so consecutive integers do not correlate.
			h.Add(uint64(i) * 0x5851f42d4c957f2d)
		}
		relErr := math.Abs(h.Estimate()-float64(n)) / float64(n)
		if bound := 4 * h.StdError(); relErr > bound {
			t.Fatalf("n=%d: relative error %.4f exceeds %.4f", n, relErr, bound)
		}
	}
}

func TestHLLDuplicatesDoNotInflate(t *testing.T) {
	h, _ := NewHyperLogLog(10, 3)
	for rep := 0; rep < 50; rep++ {
		for i := 0; i < 200; i++ {
			h.Add(uint64(i))
		}
	}
	if est := h.Estimate(); math.Abs(est-200) > 4*h.StdError()*200 {
		t.Fatalf("200 distinct keys added 50x estimates to %.1f", est)
	}
	if h.Updates() != 50*200 {
		t.Fatalf("updates = %d", h.Updates())
	}
}

// TestHLLMergeBitExact: shard sketches merge (register-wise max) into
// exactly the single sketch's registers, so the estimate is
// bit-for-bit identical.
func TestHLLMergeBitExact(t *testing.T) {
	single, _ := NewHyperLogLog(12, 17)
	shards := make([]*HyperLogLog, 3)
	for i := range shards {
		shards[i], _ = NewHyperLogLog(12, 17)
	}
	for i := 0; i < 60000; i++ {
		k := uint64(i) * 0x9e3779b97f4a7c15
		single.Add(k)
		shards[i%3].Add(k)
	}
	merged := shards[0]
	for _, s := range shards[1:] {
		if err := merged.Merge(s); err != nil {
			t.Fatal(err)
		}
	}
	for i := range single.regs {
		if merged.regs[i] != single.regs[i] {
			t.Fatalf("register %d: merged %d != single %d", i, merged.regs[i], single.regs[i])
		}
	}
	if me, se := merged.Estimate(), single.Estimate(); me != se {
		t.Fatalf("merged estimate %v != single %v", me, se)
	}
}

func TestHLLMergeRejectsMismatch(t *testing.T) {
	a, _ := NewHyperLogLog(10, 1)
	b, _ := NewHyperLogLog(11, 1)
	c, _ := NewHyperLogLog(10, 2)
	if err := a.Merge(b); err != ErrShapeMismatch {
		t.Fatalf("precision mismatch: err = %v", err)
	}
	if err := a.Merge(c); err != ErrShapeMismatch {
		t.Fatalf("seed mismatch: err = %v", err)
	}
}

func TestHLLResetReuses(t *testing.T) {
	h, _ := NewHyperLogLog(10, 1)
	for i := 0; i < 1000; i++ {
		h.Add(uint64(i))
	}
	h.Reset()
	if h.Estimate() != 0 || h.Updates() != 0 {
		t.Fatalf("reset left estimate %.1f", h.Estimate())
	}
	if allocs := testing.AllocsPerRun(100, h.Reset); allocs != 0 {
		t.Fatalf("Reset allocates %.0f/op", allocs)
	}
}

func TestHLLHotPathAllocs(t *testing.T) {
	h, _ := NewHyperLogLog(14, 1)
	k := uint64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		h.Add(k)
		k++
	})
	if allocs != 0 {
		t.Fatalf("Add allocates %.1f/op", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = h.Estimate() }); allocs != 0 {
		t.Fatalf("Estimate allocates %.1f/op", allocs)
	}
}
