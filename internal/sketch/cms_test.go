package sketch

import (
	"math/rand"
	"testing"
)

// zipfStream returns a deterministic Zipf-distributed key stream:
// count packets over keys 0..keys-1 with skew s.
func zipfStream(t testing.TB, seed int64, keys, count int, s float64) []uint64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(keys-1))
	out := make([]uint64, count)
	for i := range out {
		out[i] = z.Uint64()
	}
	return out
}

func TestCountMinShapeFromKnobs(t *testing.T) {
	c, err := NewCountMin(0.001, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Width() != 2719 { // ceil(e/0.001)
		t.Fatalf("width = %d, want 2719", c.Width())
	}
	if c.Depth() != 5 { // ceil(ln 100)
		t.Fatalf("depth = %d, want 5", c.Depth())
	}
	if c.Epsilon() > 0.001 || c.Delta() > 0.01 {
		t.Fatalf("guarantees eps=%g delta=%g exceed requested knobs", c.Epsilon(), c.Delta())
	}
	if c.Bytes() != 8*2719*5 {
		t.Fatalf("bytes = %d", c.Bytes())
	}
}

func TestCountMinRejectsBadKnobs(t *testing.T) {
	for _, tc := range [][2]float64{{0, 0.1}, {1, 0.1}, {0.1, 0}, {0.1, 1}, {-0.1, 0.5}} {
		if _, err := NewCountMin(tc[0], tc[1], 1); err == nil {
			t.Fatalf("NewCountMin(%g, %g) accepted", tc[0], tc[1])
		}
	}
	if _, err := NewCountMinShape(0, 3, 1); err == nil {
		t.Fatal("zero width accepted")
	}
}

// TestCountMinNeverUnderestimates is the core one-sided guarantee:
// over a skewed stream, every key's estimate is at least its true
// count, and the fraction of keys overshooting by more than eps*N
// stays within the delta budget.
func TestCountMinNeverUnderestimates(t *testing.T) {
	for _, conservative := range []bool{false, true} {
		const eps, delta = 0.005, 0.01
		c, err := NewCountMin(eps, delta, 42)
		if err != nil {
			t.Fatal(err)
		}
		c.Conservative = conservative
		exact := make(map[uint64]uint64)
		stream := zipfStream(t, 7, 50000, 200000, 1.2)
		for _, k := range stream {
			c.Update(k, 1)
			exact[k]++
		}
		n := float64(c.Weight())
		over := 0
		for k, truth := range exact {
			est := c.Estimate(k)
			if est < truth {
				t.Fatalf("conservative=%v: estimate(%d) = %d < true %d", conservative, k, est, truth)
			}
			if float64(est-truth) > eps*n {
				over++
			}
		}
		// Per-query failure probability is delta; allow generous slack
		// over the population so the test is not itself flaky.
		if frac := float64(over) / float64(len(exact)); frac > 5*delta {
			t.Fatalf("conservative=%v: %.3f%% of keys exceed the epsN bound (delta=%g)",
				conservative, 100*frac, delta)
		}
	}
}

// TestCountMinConservativeTightens checks that conservative update
// never loosens an estimate relative to plain update on the same
// stream.
func TestCountMinConservativeTightens(t *testing.T) {
	plain, _ := NewCountMinShape(512, 4, 9)
	cons, _ := NewCountMinShape(512, 4, 9)
	cons.Conservative = true
	stream := zipfStream(t, 11, 20000, 100000, 1.1)
	for _, k := range stream {
		plain.Update(k, 1)
		cons.Update(k, 1)
	}
	worse := 0
	for k := uint64(0); k < 20000; k++ {
		if cons.Estimate(k) > plain.Estimate(k) {
			worse++
		}
	}
	if worse > 0 {
		t.Fatalf("conservative update loosened %d estimates", worse)
	}
}

// TestCountMinMergeBitExact: per-shard sketches over a partitioned
// stream merge into exactly the single-pass sketch — cell for cell.
func TestCountMinMergeBitExact(t *testing.T) {
	single, _ := NewCountMinShape(1024, 4, 3)
	shards := make([]*CountMin, 4)
	for i := range shards {
		shards[i], _ = NewCountMinShape(1024, 4, 3)
	}
	stream := zipfStream(t, 13, 30000, 120000, 1.3)
	for i, k := range stream {
		single.Update(k, 1)
		shards[i%4].Update(k, 1)
	}
	merged := shards[0]
	for _, s := range shards[1:] {
		if err := merged.Merge(s); err != nil {
			t.Fatal(err)
		}
	}
	if merged.Weight() != single.Weight() || merged.Updates() != single.Updates() {
		t.Fatalf("merged weight/updates %d/%d != single %d/%d",
			merged.Weight(), merged.Updates(), single.Weight(), single.Updates())
	}
	for i := range single.cells {
		if merged.cells[i] != single.cells[i] {
			t.Fatalf("cell %d: merged %d != single %d", i, merged.cells[i], single.cells[i])
		}
	}
}

func TestCountMinMergeRejectsMismatch(t *testing.T) {
	a, _ := NewCountMinShape(512, 4, 1)
	b, _ := NewCountMinShape(512, 5, 1)
	cDiffSeed, _ := NewCountMinShape(512, 4, 2)
	if err := a.Merge(b); err != ErrShapeMismatch {
		t.Fatalf("depth mismatch: err = %v", err)
	}
	if err := a.Merge(cDiffSeed); err != ErrShapeMismatch {
		t.Fatalf("seed mismatch: err = %v", err)
	}
}

func TestCountMinResetReuses(t *testing.T) {
	c, _ := NewCountMinShape(256, 3, 5)
	c.Update(17, 4)
	c.Reset()
	if c.Estimate(17) != 0 || c.Weight() != 0 || c.Updates() != 0 {
		t.Fatal("reset left state behind")
	}
	allocs := testing.AllocsPerRun(100, c.Reset)
	if allocs != 0 {
		t.Fatalf("Reset allocates %.0f/op", allocs)
	}
}

func TestCountMinHotPathAllocs(t *testing.T) {
	for _, conservative := range []bool{false, true} {
		c, _ := NewCountMinShape(2048, 5, 7)
		c.Conservative = conservative
		k := uint64(0)
		allocs := testing.AllocsPerRun(1000, func() {
			c.Update(k, 1)
			_ = c.Estimate(k)
			k++
		})
		if allocs != 0 {
			t.Fatalf("conservative=%v: hot path allocates %.1f/op", conservative, allocs)
		}
	}
}
