package dsp

import (
	"math"
	"testing"
)

func TestWindowNames(t *testing.T) {
	cases := map[Window]string{
		Rectangular: "rectangular",
		Hann:        "hann",
		Hamming:     "hamming",
		Blackman:    "blackman",
		Window(99):  "unknown",
	}
	for w, want := range cases {
		if got := w.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", w, got, want)
		}
	}
}

func TestWindowCoefficientsBounds(t *testing.T) {
	for _, w := range []Window{Rectangular, Hann, Hamming, Blackman} {
		coef := w.Coefficients(257)
		if len(coef) != 257 {
			t.Fatalf("%v: len = %d", w, len(coef))
		}
		for i, c := range coef {
			if c < -1e-12 || c > 1+1e-12 {
				t.Errorf("%v coef[%d] = %g out of [0,1]", w, i, c)
			}
		}
	}
}

func TestWindowSymmetry(t *testing.T) {
	for _, w := range []Window{Hann, Hamming, Blackman} {
		coef := w.Coefficients(128)
		for i := range coef {
			j := len(coef) - 1 - i
			if math.Abs(coef[i]-coef[j]) > 1e-12 {
				t.Errorf("%v not symmetric at %d/%d: %g vs %g", w, i, j, coef[i], coef[j])
			}
		}
	}
}

func TestHannEndpointsAndPeak(t *testing.T) {
	coef := Hann.Coefficients(101)
	if coef[0] > 1e-12 || coef[100] > 1e-12 {
		t.Errorf("Hann endpoints = %g, %g, want 0", coef[0], coef[100])
	}
	if math.Abs(coef[50]-1) > 1e-12 {
		t.Errorf("Hann midpoint = %g, want 1", coef[50])
	}
}

func TestWindowDegenerateSizes(t *testing.T) {
	if Hann.Coefficients(0) != nil {
		t.Error("size 0 should give nil")
	}
	one := Hann.Coefficients(1)
	if len(one) != 1 || one[0] != 1 {
		t.Errorf("size 1 should give [1], got %v", one)
	}
}

func TestWindowApply(t *testing.T) {
	x := []float64{1, 1, 1, 1, 1}
	Hann.Apply(x)
	if x[0] > 1e-12 || math.Abs(x[2]-1) > 1e-12 {
		t.Errorf("Apply failed: %v", x)
	}
	y := []float64{2, 2}
	Rectangular.Apply(y)
	if y[0] != 2 || y[1] != 2 {
		t.Errorf("Rectangular.Apply should not modify: %v", y)
	}
}

func TestWindowGain(t *testing.T) {
	if g := Rectangular.Gain(64); math.Abs(g-1) > 1e-12 {
		t.Errorf("rectangular gain = %g, want 1", g)
	}
	// Hann coherent gain tends to 0.5 for large n.
	if g := Hann.Gain(4096); math.Abs(g-0.5) > 0.001 {
		t.Errorf("hann gain = %g, want ~0.5", g)
	}
	if Hann.Gain(0) != 0 {
		t.Error("gain of empty window should be 0")
	}
}

func TestHannReducesLeakage(t *testing.T) {
	// A non-bin-aligned tone leaks less into a far bin under Hann
	// than under a rectangular window.
	const (
		n          = 2048
		sampleRate = 44100.0
	)
	freq := BinFrequency(100, n, sampleRate) + 0.5*BinResolution(n, sampleRate)
	raw := sine(freq, sampleRate, n)

	rect := make([]float64, n)
	copy(rect, raw)
	rectSpec := Magnitudes(FFTReal(Rectangular.Apply(rect)))

	hann := make([]float64, n)
	copy(hann, raw)
	hannSpec := Magnitudes(FFTReal(Hann.Apply(hann)))

	farBin := 130
	if hannSpec[farBin] >= rectSpec[farBin] {
		t.Errorf("hann leakage %g should be below rectangular %g at bin %d",
			hannSpec[farBin], rectSpec[farBin], farBin)
	}
}
