package dsp

import (
	"math"
	"testing"
)

func TestFindPeaksTwoTones(t *testing.T) {
	const (
		n          = 8192
		sampleRate = 44100.0
	)
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / sampleRate
		x[i] = math.Sin(2*math.Pi*500*ti) + 0.8*math.Sin(2*math.Pi*900*ti)
	}
	Hann.Apply(x)
	spec := PowerSpectrum(FFTReal(x))
	peaks := FindPeaks(spec, n, sampleRate, 1, 50)
	if len(peaks) < 2 {
		t.Fatalf("found %d peaks, want >= 2", len(peaks))
	}
	// Strongest two should be near 500 and 900 Hz.
	found500, found900 := false, false
	for _, p := range peaks[:2] {
		if math.Abs(p.Frequency-500) < 20 {
			found500 = true
		}
		if math.Abs(p.Frequency-900) < 20 {
			found900 = true
		}
	}
	if !found500 || !found900 {
		t.Errorf("peaks = %+v, want ~500 and ~900 Hz", peaks[:2])
	}
	if peaks[0].Power < peaks[1].Power {
		t.Error("peaks not sorted by descending power")
	}
}

func TestFindPeaksMinSeparation(t *testing.T) {
	// Two bumps 3 bins apart; with large minSeparation only one survives.
	spec := make([]float64, 100)
	spec[40] = 10
	spec[43] = 8
	const (
		fftSize    = 198 // bins = 100
		sampleRate = 198.0
	)
	all := FindPeaks(spec, fftSize, sampleRate, 0.5, 0)
	if len(all) != 2 {
		t.Fatalf("unfiltered peaks = %d, want 2", len(all))
	}
	sep := FindPeaks(spec, fftSize, sampleRate, 0.5, 5)
	if len(sep) != 1 {
		t.Fatalf("separated peaks = %d, want 1", len(sep))
	}
	if sep[0].Bin != 40 {
		t.Errorf("kept bin %d, want the stronger 40", sep[0].Bin)
	}
}

func TestFindPeaksThreshold(t *testing.T) {
	spec := make([]float64, 50)
	spec[10] = 0.4
	spec[30] = 2.0
	peaks := FindPeaks(spec, 98, 98, 1.0, 0)
	if len(peaks) != 1 || peaks[0].Bin != 30 {
		t.Errorf("peaks = %+v, want only bin 30", peaks)
	}
}

func TestTopPeaksLimit(t *testing.T) {
	spec := make([]float64, 200)
	for i := 10; i < 190; i += 20 {
		spec[i] = float64(i)
	}
	peaks := TopPeaks(spec, 398, 398, 0.5, 0, 3)
	if len(peaks) != 3 {
		t.Fatalf("len = %d, want 3", len(peaks))
	}
	if peaks[0].Bin != 170 {
		t.Errorf("strongest bin = %d, want 170", peaks[0].Bin)
	}
}

func TestFindPeaksEmptyAndFlat(t *testing.T) {
	if p := FindPeaks(nil, 8, 8, 0, 0); len(p) != 0 {
		t.Error("nil spectrum should give no peaks")
	}
	flat := []float64{1, 1, 1, 1}
	if p := FindPeaks(flat, 8, 8, 0.5, 0); len(p) != 0 {
		t.Errorf("flat spectrum gave peaks: %+v", p)
	}
}
