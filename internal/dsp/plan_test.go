package dsp

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// naiveDFT is the O(N²) textbook transform the planned engine is
// checked against: X[k] = sum_n x[n] * exp(-2*pi*i*n*k/N).
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for i := 0; i < n; i++ {
			s, c := math.Sincos(-2 * math.Pi * float64(i) * float64(k) / float64(n))
			sum += x[i] * complex(c, s)
		}
		out[k] = sum
	}
	return out
}

func randomReal(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = 2*rng.Float64() - 1
	}
	return x
}

// goldenSizes covers every length 1..64 (all parity/edge cases of the
// packed split) plus larger sizes up to 4096, including non-powers of
// two that exercise the zero-pad path.
func goldenSizes() []int {
	var sizes []int
	for n := 1; n <= 64; n++ {
		sizes = append(sizes, n)
	}
	sizes = append(sizes, 100, 128, 255, 256, 257, 512, 1000, 1024, 2048, 2205, 4095, 4096)
	return sizes
}

// TestPlanMatchesNaiveDFT checks the planned complex transform and the
// packed real-input transform against the naive DFT to 1e-9 across
// sizes 1..4096, zero-padding non-power-of-two inputs exactly as the
// WindowedSpectrum front end does.
func TestPlanMatchesNaiveDFT(t *testing.T) {
	const tol = 1e-9
	for _, n := range goldenSizes() {
		x := randomReal(n, int64(n))
		padded := NextPowerOfTwo(n)
		ref := make([]complex128, padded)
		for i, v := range x {
			ref[i] = complex(v, 0)
		}
		want := naiveDFT(ref)

		// Complex transform on the plan.
		p := PlanFFT(padded)
		got := make([]complex128, padded)
		copy(got, ref)
		p.Transform(got)
		for k := range want {
			if d := cabs(got[k] - want[k]); d > tol {
				t.Fatalf("n=%d Transform bin %d: |Δ| = %g > %g", n, k, d, tol)
			}
		}

		// Packed real transform (half spectrum, zero-pad inside).
		spec := p.RealSpectrumInto(nil, x)
		if len(spec) != padded/2+1 {
			t.Fatalf("n=%d RealSpectrumInto length %d, want %d", n, len(spec), padded/2+1)
		}
		for k := range spec {
			if d := cabs(spec[k] - want[k]); d > tol {
				t.Fatalf("n=%d RealSpectrumInto bin %d: |Δ| = %g > %g", n, k, d, tol)
			}
		}

		// Round trip through the plan's inverse.
		inv := make([]complex128, padded)
		copy(inv, got)
		p.InverseTransform(inv)
		for k := range ref {
			if d := cabs(inv[k] - ref[k]); d > tol {
				t.Fatalf("n=%d InverseTransform sample %d: |Δ| = %g > %g", n, k, d, tol)
			}
		}
	}
}

// TestWindowedIntoMatchesWrappers pins the Into paths to the public
// wrappers bit-for-bit (same plan, same code path underneath).
func TestWindowedIntoMatchesWrappers(t *testing.T) {
	x := randomReal(2205, 9)
	p := PlanFFT(NextPowerOfTwo(len(x)))
	for _, win := range []Window{Rectangular, Hann, Hamming, Blackman} {
		wantMags, n1 := WindowedSpectrum(x, win)
		gotMags := p.WindowedSpectrumInto(nil, x, win)
		if n1 != p.N || len(wantMags) != len(gotMags) {
			t.Fatalf("%v: size mismatch (%d vs %d, %d vs %d)", win, n1, p.N, len(wantMags), len(gotMags))
		}
		for k := range wantMags {
			if wantMags[k] != gotMags[k] {
				t.Fatalf("%v: magnitude bin %d differs: %g vs %g", win, k, wantMags[k], gotMags[k])
			}
		}
		wantPow, _ := WindowedPowerSpectrum(x, win)
		gotPow := p.WindowedPowerSpectrumInto(nil, x, win)
		for k := range wantPow {
			if wantPow[k] != gotPow[k] {
				t.Fatalf("%v: power bin %d differs: %g vs %g", win, k, wantPow[k], gotPow[k])
			}
		}
	}
}

// TestIntoReusesCapacity checks the zero-allocation contract: a
// destination with enough capacity is returned with the same backing
// array.
func TestIntoReusesCapacity(t *testing.T) {
	x := randomReal(256, 4)
	p := PlanFFT(256)
	dst := make([]float64, 0, 129)
	out := p.WindowedSpectrumInto(dst, x, Hann)
	if &out[0] != &dst[:1][0] {
		t.Error("WindowedSpectrumInto reallocated despite sufficient capacity")
	}
	cdst := make([]complex128, 0, 129)
	cout := p.RealSpectrumInto(cdst, x)
	if &cout[0] != &cdst[:1][0] {
		t.Error("RealSpectrumInto reallocated despite sufficient capacity")
	}
}

// TestGoertzelPlanMatchesGoertzel checks the single-pass bank against
// the per-frequency reference.
func TestGoertzelPlanMatchesGoertzel(t *testing.T) {
	const sampleRate = 44100.0
	x := randomReal(2205, 11)
	freqs := []float64{440, 523.25, 700, 880, 1000.5, 2000}
	gp := NewGoertzelPlan(freqs, sampleRate)
	var got []float64
	for trial := 0; trial < 3; trial++ { // state must fully reset between blocks
		got = gp.MagnitudesInto(got, x)
		for i, f := range freqs {
			want := Goertzel(x, f, sampleRate)
			if math.Abs(got[i]-want) > 1e-9*(1+want) {
				t.Fatalf("trial %d freq %g: bank %g, reference %g", trial, f, got[i], want)
			}
		}
	}
	bank := GoertzelBank(x, freqs, sampleRate)
	for i := range freqs {
		if bank[i] != got[i] {
			t.Fatalf("GoertzelBank[%d] = %g, plan = %g", i, bank[i], got[i])
		}
	}
}

// TestPlanConcurrentSharedPlan hammers one shared FFTPlan from many
// goroutines (run under -race in CI): the plan's tables are read-only
// and its scratch is pooled per call, so every goroutine must get the
// same spectrum.
func TestPlanConcurrentSharedPlan(t *testing.T) {
	const (
		size       = 1024
		goroutines = 8
		iterations = 50
	)
	x := randomReal(700, 21) // exercises the zero-pad path too
	p := PlanFFT(size)
	want := p.WindowedSpectrumInto(nil, x, Hann)

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mags []float64
			var spec []complex128
			for i := 0; i < iterations; i++ {
				mags = p.WindowedSpectrumInto(mags, x, Hann)
				for k := range mags {
					if mags[k] != want[k] {
						errs <- errMismatch
						return
					}
				}
				spec = p.RealSpectrumInto(spec, x)
				work := make([]complex128, size)
				for j, v := range x {
					work[j] = complex(v, 0)
				}
				p.Transform(work)
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

var errMismatch = errorString("concurrent WindowedSpectrumInto diverged from serial result")

type errorString string

func (e errorString) Error() string { return string(e) }

// TestWindowedSpectrumScratchMatchesPooled pins the caller-owned
// scratch entry points to the pooled ones bit-for-bit: same butterfly
// schedule, same packing, only the workspace ownership differs.
func TestWindowedSpectrumScratchMatchesPooled(t *testing.T) {
	var s FFTScratch // zero value, grown on first use
	for _, n := range goldenSizes() {
		x := randomReal(n, int64(n)+99)
		p := PlanFFT(NextPowerOfTwo(n))
		for _, win := range []Window{Rectangular, Hann, Hamming} {
			pooledMag := p.WindowedSpectrumInto(nil, x, win)
			ownedMag := p.WindowedSpectrumScratch(nil, x, win, &s)
			pooledPow := p.WindowedPowerSpectrumInto(nil, x, win)
			ownedPow := p.WindowedPowerSpectrumScratch(nil, x, win, &s)
			for k := range pooledMag {
				if pooledMag[k] != ownedMag[k] {
					t.Fatalf("n=%d win=%v bin %d: scratch magnitude %g != pooled %g",
						n, win, k, ownedMag[k], pooledMag[k])
				}
				if pooledPow[k] != ownedPow[k] {
					t.Fatalf("n=%d win=%v bin %d: scratch power %g != pooled %g",
						n, win, k, ownedPow[k], pooledPow[k])
				}
			}
		}
	}
}

// TestWindowedSpectrumScratchSteadyStateAllocs is the reason the
// scratch entry points exist: a warmed caller-owned workspace never
// touches the GC-clearable pool, so repeated calls allocate nothing.
func TestWindowedSpectrumScratchSteadyStateAllocs(t *testing.T) {
	x := randomReal(2205, 5) // a 50 ms window at 44.1 kHz
	p := PlanFFT(NextPowerOfTwo(len(x)))
	var s FFTScratch
	dst := p.WindowedSpectrumScratch(nil, x, Hann, &s) // warm up
	allocs := testing.AllocsPerRun(100, func() {
		dst = p.WindowedSpectrumScratch(dst, x, Hann, &s)
	})
	if allocs != 0 {
		t.Errorf("steady-state WindowedSpectrumScratch allocates %.1f objects/op, want 0", allocs)
	}
}
