package dsp_test

import (
	"fmt"
	"math"

	"mdn/internal/dsp"
)

// Detect which of two known frequencies is present in a block using
// the Goertzel algorithm — the MDN detector's hot path.
func ExampleGoertzel() {
	const sampleRate = 44100.0
	samples := make([]float64, 4410) // 100 ms
	for i := range samples {
		samples[i] = math.Sin(2 * math.Pi * 600 * float64(i) / sampleRate)
	}
	for _, freq := range []float64{500, 600} {
		mag := dsp.Goertzel(samples, freq, sampleRate)
		amp := 2 * mag / float64(len(samples))
		fmt.Printf("%.0f Hz: amplitude %.2f\n", freq, amp)
	}
	// Output:
	// 500 Hz: amplitude 0.00
	// 600 Hz: amplitude 1.00
}

// Find the strongest spectral peaks of a two-tone signal.
func ExampleFindPeaks() {
	const (
		sampleRate = 44100.0
		n          = 8192
	)
	samples := make([]float64, n)
	for i := range samples {
		t := float64(i) / sampleRate
		samples[i] = math.Sin(2*math.Pi*500*t) + 0.5*math.Sin(2*math.Pi*1200*t)
	}
	spec, fftSize := dsp.WindowedPowerSpectrum(samples, dsp.Hann)
	for _, p := range dsp.TopPeaks(spec, fftSize, sampleRate, 1, 50, 2) {
		fmt.Printf("%.0f Hz\n", math.Round(p.Frequency/10)*10)
	}
	// Output:
	// 500 Hz
	// 1200 Hz
}

// Convert between Hz and the mel scale used by the paper's
// spectrograms.
func ExampleHzToMel() {
	fmt.Printf("%.0f\n", dsp.HzToMel(1000))
	fmt.Printf("%.0f\n", dsp.MelToHz(dsp.HzToMel(4000)))
	// Output:
	// 1000
	// 4000
}
