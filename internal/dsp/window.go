package dsp

import (
	"math"
	"sync"
)

// Window identifies a tapering function applied to a signal block
// before a transform to control spectral leakage.
type Window int

// Supported window functions.
const (
	// Rectangular applies no tapering (the implicit window of a raw
	// block). Worst leakage, narrowest main lobe.
	Rectangular Window = iota
	// Hann is the raised-cosine window; the default for MDN tone
	// detection because adjacent 20 Hz-spaced tones must not leak
	// into each other's bins.
	Hann
	// Hamming is the classic Hamming window (slightly lower first
	// sidelobe than Hann, no zero endpoints).
	Hamming
	// Blackman offers stronger sidelobe suppression at the cost of a
	// wider main lobe.
	Blackman
)

// String returns the conventional name of the window.
func (w Window) String() string {
	switch w {
	case Rectangular:
		return "rectangular"
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Blackman:
		return "blackman"
	default:
		return "unknown"
	}
}

// winKey keys the per-(window, length) caches below.
type winKey struct {
	w Window
	n int
}

var (
	coefCache sync.Map // winKey -> []float64 (shared, read-only)
	gainCache sync.Map // winKey -> float64
)

// coefficients returns the shared, cached coefficient slice for
// (w, n). Callers must treat it as read-only. Rectangular returns nil,
// which every internal consumer interprets as "no tapering" — it
// skips a pointless multiply-by-one pass.
func (w Window) coefficients(n int) []float64 {
	if n <= 0 || w == Rectangular {
		return nil
	}
	key := winKey{w, n}
	if v, ok := coefCache.Load(key); ok {
		return v.([]float64)
	}
	out := w.compute(n)
	actual, _ := coefCache.LoadOrStore(key, out)
	return actual.([]float64)
}

func (w Window) compute(n int) []float64 {
	out := make([]float64, n)
	if n == 1 {
		out[0] = 1
		return out
	}
	den := float64(n - 1)
	for i := range out {
		t := float64(i) / den
		switch w {
		case Hann:
			out[i] = 0.5 - 0.5*math.Cos(2*math.Pi*t)
		case Hamming:
			out[i] = 0.54 - 0.46*math.Cos(2*math.Pi*t)
		case Blackman:
			out[i] = 0.42 - 0.5*math.Cos(2*math.Pi*t) + 0.08*math.Cos(4*math.Pi*t)
		default:
			out[i] = 1
		}
	}
	return out
}

// Coefficients returns the n window coefficients. For n <= 1 it
// returns a slice of ones (a single-sample window cannot taper). The
// result is a fresh copy the caller may mutate; hot paths inside dsp
// use the shared cache instead.
func (w Window) Coefficients(n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	if coef := w.coefficients(n); coef != nil {
		copy(out, coef)
	} else {
		for i := range out {
			out[i] = 1
		}
	}
	return out
}

// Apply multiplies x by the window in place and returns x. It uses
// the cached coefficients, so steady-state calls allocate nothing.
func (w Window) Apply(x []float64) []float64 {
	coef := w.coefficients(len(x))
	if coef == nil {
		return x
	}
	for i := range x {
		x[i] *= coef[i]
	}
	return x
}

// Gain returns the coherent gain of the window (mean coefficient),
// used to correct tone amplitudes measured through a windowed FFT.
// Gains are cached per (window, length), so repeated calls on the
// controller hot path are allocation-free.
func (w Window) Gain(n int) float64 {
	if n <= 0 {
		return 0
	}
	if w == Rectangular {
		return 1
	}
	key := winKey{w, n}
	if v, ok := gainCache.Load(key); ok {
		return v.(float64)
	}
	coef := w.coefficients(n)
	sum := 0.0
	for _, c := range coef {
		sum += c
	}
	g := sum / float64(n)
	gainCache.Store(key, g)
	return g
}
