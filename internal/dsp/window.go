package dsp

import "math"

// Window identifies a tapering function applied to a signal block
// before a transform to control spectral leakage.
type Window int

// Supported window functions.
const (
	// Rectangular applies no tapering (the implicit window of a raw
	// block). Worst leakage, narrowest main lobe.
	Rectangular Window = iota
	// Hann is the raised-cosine window; the default for MDN tone
	// detection because adjacent 20 Hz-spaced tones must not leak
	// into each other's bins.
	Hann
	// Hamming is the classic Hamming window (slightly lower first
	// sidelobe than Hann, no zero endpoints).
	Hamming
	// Blackman offers stronger sidelobe suppression at the cost of a
	// wider main lobe.
	Blackman
)

// String returns the conventional name of the window.
func (w Window) String() string {
	switch w {
	case Rectangular:
		return "rectangular"
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Blackman:
		return "blackman"
	default:
		return "unknown"
	}
}

// Coefficients returns the n window coefficients. For n <= 1 it
// returns a slice of ones (a single-sample window cannot taper).
func (w Window) Coefficients(n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	if n == 1 {
		out[0] = 1
		return out
	}
	den := float64(n - 1)
	for i := range out {
		t := float64(i) / den
		switch w {
		case Hann:
			out[i] = 0.5 - 0.5*math.Cos(2*math.Pi*t)
		case Hamming:
			out[i] = 0.54 - 0.46*math.Cos(2*math.Pi*t)
		case Blackman:
			out[i] = 0.42 - 0.5*math.Cos(2*math.Pi*t) + 0.08*math.Cos(4*math.Pi*t)
		default:
			out[i] = 1
		}
	}
	return out
}

// Apply multiplies x by the window in place and returns x.
func (w Window) Apply(x []float64) []float64 {
	if w == Rectangular {
		return x
	}
	coef := w.Coefficients(len(x))
	for i := range x {
		x[i] *= coef[i]
	}
	return x
}

// Gain returns the coherent gain of the window (mean coefficient),
// used to correct tone amplitudes measured through a windowed FFT.
func (w Window) Gain(n int) float64 {
	if n <= 0 {
		return 0
	}
	coef := w.Coefficients(n)
	sum := 0.0
	for _, c := range coef {
		sum += c
	}
	return sum / float64(n)
}
