package dsp

// grow helpers back the planned Into APIs: results are written into
// the caller's slice when it has capacity, so a caller that feeds each
// call's return value into the next reaches a steady state with zero
// allocations. They deliberately do not zero reused memory — every
// Into path overwrites all n elements.

func growFloat(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

func growComplex(s []complex128, n int) []complex128 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]complex128, n)
}
