// Package dsp implements the signal-processing substrate for
// Music-Defined Networking: a radix-2 FFT, window functions, the
// Goertzel single-bin detector, mel-scale utilities, STFT
// spectrograms, and peak picking.
//
// Everything is built on the standard library only. All transforms
// operate on float64 (or complex128) slices and are deterministic.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// NextPowerOfTwo returns the smallest power of two >= n.
// It panics if n is not positive or overflows an int.
func NextPowerOfTwo(n int) int {
	if n <= 0 {
		panic("dsp: NextPowerOfTwo requires n > 0")
	}
	if IsPowerOfTwo(n) {
		return n
	}
	p := 1 << bits.Len(uint(n))
	if p <= 0 {
		panic("dsp: NextPowerOfTwo overflow")
	}
	return p
}

// FFT computes the in-place decimation-in-time radix-2 fast Fourier
// transform of x. len(x) must be a power of two; FFT panics otherwise,
// because a wrong length is a programming error, not an input error.
//
// The transform follows the usual engineering convention:
//
//	X[k] = sum_n x[n] * exp(-2*pi*i*n*k/N)
func FFT(x []complex128) {
	fftDIT(x, false)
}

// IFFT computes the in-place inverse FFT of x, including the 1/N
// normalisation, so IFFT(FFT(x)) == x up to rounding.
func IFFT(x []complex128) {
	fftDIT(x, true)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
}

func fftDIT(x []complex128, inverse bool) {
	n := len(x)
	if n == 0 {
		return
	}
	if !IsPowerOfTwo(n) {
		panic(fmt.Sprintf("dsp: FFT length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	if n == 1 {
		return
	}
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := sign * 2 * math.Pi / float64(size)
		// Twiddle factor advanced by multiplication each iteration
		// would accumulate error over long runs; recompute per butterfly
		// group via Sincos, which is still cheap relative to the loop body.
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				s, c := math.Sincos(step * float64(k))
				w := complex(c, s)
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// FFTReal transforms a real-valued signal. The input is zero-padded to
// the next power of two when necessary. It returns the full complex
// spectrum of length NextPowerOfTwo(len(x)).
func FFTReal(x []float64) []complex128 {
	if len(x) == 0 {
		return nil
	}
	n := NextPowerOfTwo(len(x))
	out := make([]complex128, n)
	for i, v := range x {
		out[i] = complex(v, 0)
	}
	FFT(out)
	return out
}

// Magnitudes returns |X[k]| for the first len(x)/2+1 bins (the
// non-negative frequencies of a real signal's spectrum).
func Magnitudes(x []complex128) []float64 {
	if len(x) == 0 {
		return nil
	}
	half := len(x)/2 + 1
	out := make([]float64, half)
	for i := 0; i < half; i++ {
		out[i] = cabs(x[i])
	}
	return out
}

// PowerSpectrum returns |X[k]|^2 for the non-negative frequency bins.
func PowerSpectrum(x []complex128) []float64 {
	if len(x) == 0 {
		return nil
	}
	half := len(x)/2 + 1
	out := make([]float64, half)
	for i := 0; i < half; i++ {
		re := real(x[i])
		im := imag(x[i])
		out[i] = re*re + im*im
	}
	return out
}

func cabs(c complex128) float64 {
	return math.Hypot(real(c), imag(c))
}

// BinFrequency returns the centre frequency in Hz of FFT bin k for a
// transform of length fftSize at the given sample rate.
func BinFrequency(k, fftSize int, sampleRate float64) float64 {
	return float64(k) * sampleRate / float64(fftSize)
}

// FrequencyBin returns the FFT bin index whose centre frequency is
// closest to freq for a transform of length fftSize at sampleRate.
func FrequencyBin(freq float64, fftSize int, sampleRate float64) int {
	k := int(math.Round(freq * float64(fftSize) / sampleRate))
	if k < 0 {
		k = 0
	}
	if k > fftSize/2 {
		k = fftSize / 2
	}
	return k
}

// BinResolution returns the frequency width in Hz of one FFT bin.
func BinResolution(fftSize int, sampleRate float64) float64 {
	return sampleRate / float64(fftSize)
}

// WindowedSpectrum applies the window to a copy of x, zero-pads to
// the next power of two, and returns the half-spectrum magnitudes and
// the transform size. It is the analysis front end shared by the MDN
// detectors.
func WindowedSpectrum(x []float64, win Window) (mags []float64, fftSize int) {
	if len(x) == 0 {
		return nil, 0
	}
	work := make([]float64, len(x))
	copy(work, x)
	win.Apply(work)
	spec := FFTReal(work)
	return Magnitudes(spec), len(spec)
}

// WindowedPowerSpectrum is WindowedSpectrum returning power values.
func WindowedPowerSpectrum(x []float64, win Window) (power []float64, fftSize int) {
	if len(x) == 0 {
		return nil, 0
	}
	work := make([]float64, len(x))
	copy(work, x)
	win.Apply(work)
	spec := FFTReal(work)
	return PowerSpectrum(spec), len(spec)
}
