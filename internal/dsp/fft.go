// Package dsp implements the signal-processing substrate for
// Music-Defined Networking: a radix-2 FFT, window functions, the
// Goertzel single-bin detector, mel-scale utilities, STFT
// spectrograms, and peak picking.
//
// Everything is built on the standard library only. All transforms
// operate on float64 (or complex128) slices and are deterministic.
package dsp

import (
	"math"
	"math/bits"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// NextPowerOfTwo returns the smallest power of two >= n.
// It panics if n is not positive or overflows an int.
func NextPowerOfTwo(n int) int {
	if n <= 0 {
		panic("dsp: NextPowerOfTwo requires n > 0")
	}
	if IsPowerOfTwo(n) {
		return n
	}
	p := 1 << bits.Len(uint(n))
	if p <= 0 {
		panic("dsp: NextPowerOfTwo overflow")
	}
	return p
}

// FFT computes the in-place decimation-in-time radix-2 fast Fourier
// transform of x. len(x) must be a power of two; FFT panics otherwise,
// because a wrong length is a programming error, not an input error.
//
// The transform follows the usual engineering convention:
//
//	X[k] = sum_n x[n] * exp(-2*pi*i*n*k/N)
//
// It runs on the cached FFTPlan for len(x); callers in a hot loop can
// hold the plan themselves (PlanFFT) to skip the cache lookup.
func FFT(x []complex128) {
	if len(x) == 0 {
		return
	}
	PlanFFT(len(x)).Transform(x)
}

// IFFT computes the in-place inverse FFT of x, including the 1/N
// normalisation, so IFFT(FFT(x)) == x up to rounding.
func IFFT(x []complex128) {
	if len(x) == 0 {
		return
	}
	PlanFFT(len(x)).InverseTransform(x)
}

// FFTReal transforms a real-valued signal. The input is zero-padded to
// the next power of two when necessary. It returns the full complex
// spectrum of length NextPowerOfTwo(len(x)).
//
// Internally it runs the packed real transform (half the butterflies)
// and mirrors the half spectrum via conjugate symmetry. Callers that
// only need the non-negative bins should use FFTPlan.RealSpectrumInto
// and skip the mirroring and the allocation.
func FFTReal(x []float64) []complex128 {
	if len(x) == 0 {
		return nil
	}
	n := NextPowerOfTwo(len(x))
	p := PlanFFT(n)
	out := make([]complex128, n)
	half := p.RealSpectrumInto(out[:0], x)
	// Mirror X[n-k] = conj(X[k]) into the upper half. half aliases
	// out[:n/2+1], so walk outward-in.
	for k := n/2 + 1; k < n; k++ {
		c := half[n-k]
		out[k] = complex(real(c), -imag(c))
	}
	return out
}

// Magnitudes returns |X[k]| for the first len(x)/2+1 bins (the
// non-negative frequencies of a real signal's spectrum).
func Magnitudes(x []complex128) []float64 {
	if len(x) == 0 {
		return nil
	}
	half := len(x)/2 + 1
	out := make([]float64, half)
	for i := 0; i < half; i++ {
		out[i] = cabs(x[i])
	}
	return out
}

// PowerSpectrum returns |X[k]|^2 for the non-negative frequency bins.
func PowerSpectrum(x []complex128) []float64 {
	if len(x) == 0 {
		return nil
	}
	half := len(x)/2 + 1
	out := make([]float64, half)
	for i := 0; i < half; i++ {
		re := real(x[i])
		im := imag(x[i])
		out[i] = re*re + im*im
	}
	return out
}

func cabs(c complex128) float64 {
	return math.Hypot(real(c), imag(c))
}

// BinFrequency returns the centre frequency in Hz of FFT bin k for a
// transform of length fftSize at the given sample rate.
func BinFrequency(k, fftSize int, sampleRate float64) float64 {
	return float64(k) * sampleRate / float64(fftSize)
}

// FrequencyBin returns the FFT bin index whose centre frequency is
// closest to freq for a transform of length fftSize at sampleRate.
func FrequencyBin(freq float64, fftSize int, sampleRate float64) int {
	k := int(math.Round(freq * float64(fftSize) / sampleRate))
	if k < 0 {
		k = 0
	}
	if k > fftSize/2 {
		k = fftSize / 2
	}
	return k
}

// BinResolution returns the frequency width in Hz of one FFT bin.
func BinResolution(fftSize int, sampleRate float64) float64 {
	return sampleRate / float64(fftSize)
}

// WindowedSpectrum windows x (without modifying it), zero-pads to the
// next power of two, and returns the half-spectrum magnitudes and the
// transform size. It is the analysis front end shared by the MDN
// detectors — a thin allocating wrapper over
// FFTPlan.WindowedSpectrumInto, which hot paths should call directly
// with a reused destination slice.
func WindowedSpectrum(x []float64, win Window) (mags []float64, fftSize int) {
	if len(x) == 0 {
		return nil, 0
	}
	n := NextPowerOfTwo(len(x))
	return PlanFFT(n).WindowedSpectrumInto(nil, x, win), n
}

// WindowedPowerSpectrum is WindowedSpectrum returning power values.
func WindowedPowerSpectrum(x []float64, win Window) (power []float64, fftSize int) {
	if len(x) == 0 {
		return nil, 0
	}
	n := NextPowerOfTwo(len(x))
	return PlanFFT(n).WindowedPowerSpectrumInto(nil, x, win), n
}
