package dsp

import (
	"math"
	"testing"
)

// streamTestSignal synthesizes a deterministic multi-tone signal with a
// pseudo-noise floor: two MDN-ish tones (not bin-aligned) plus an LCG
// noise stream, so resonator states take non-trivial values in every
// window.
func streamTestSignal(n int, rate float64) []float64 {
	s := make([]float64, n)
	lcg := uint64(0x9e3779b97f4a7c15)
	for i := range s {
		t := float64(i) / rate
		lcg = lcg*6364136223846793005 + 1442695040888963407
		noise := (float64(lcg>>11)/float64(1<<53) - 0.5) * 0.01
		s[i] = 0.2*math.Sin(2*math.Pi*1017*t) +
			0.05*math.Sin(2*math.Pi*2531*t+0.7) + noise
	}
	return s
}

func TestSlidingGoertzelBitExactWithBatch(t *testing.T) {
	const (
		rate    = 44100.0
		windowN = 2205
	)
	freqs := []float64{1017, 2531, 3700}
	signal := streamTestSignal(windowN*6, rate)
	for _, hopN := range []int{441, 735, windowN} {
		sg := NewSlidingGoertzel(freqs, rate, windowN, hopN)
		batch := NewGoertzelPlan(freqs, rate)
		var ref []float64
		win := 0
		// Feed hop-sized chunks; window w covers samples
		// [w*hopN, w*hopN+windowN) and must match the batch plan over
		// exactly those samples, float for float.
		for off := 0; off+hopN <= len(signal); off += hopN {
			sg.Process(signal[off:off+hopN], func(mags []float64) {
				start := win * hopN
				ref = batch.MagnitudesInto(ref, signal[start:start+windowN])
				for j := range mags {
					if mags[j] != ref[j] {
						t.Fatalf("hopN=%d window %d freq %g: sliding %v != batch %v",
							hopN, win, freqs[j], mags[j], ref[j])
					}
				}
				win++
			})
		}
		wantWins := (len(signal) - windowN) / hopN
		if win != wantWins+1 {
			t.Errorf("hopN=%d emitted %d windows, want %d", hopN, win, wantWins+1)
		}
	}
}

func TestSlidingGoertzelResetRestartsStagger(t *testing.T) {
	const rate, windowN, hopN = 44100.0, 2205, 441
	freqs := []float64{1017}
	signal := streamTestSignal(windowN*2, rate)
	sg := NewSlidingGoertzel(freqs, rate, windowN, hopN)
	first := math.NaN()
	sg.Process(signal[:windowN], func(m []float64) { first = m[0] })
	sg.Reset()
	again := math.NaN()
	sg.Process(signal[:windowN], func(m []float64) { again = m[0] })
	if first != again || math.IsNaN(first) {
		t.Fatalf("post-Reset window %v != first window %v", again, first)
	}
}

func TestSlidingGoertzelMisalignedHopPanics(t *testing.T) {
	for _, bad := range []struct{ windowN, hopN int }{
		{2205, 440}, // does not divide
		{2205, 0},
		{2205, -441},
		{0, 441},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("windowN=%d hopN=%d did not panic", bad.windowN, bad.hopN)
				}
			}()
			NewSlidingGoertzel([]float64{1000}, 44100, bad.windowN, bad.hopN)
		}()
	}
}

func TestSlidingGoertzelProcessAllocs(t *testing.T) {
	const rate, windowN, hopN = 44100.0, 2205, 441
	sg := NewSlidingGoertzel([]float64{1017, 2531}, rate, windowN, hopN)
	signal := streamTestSignal(hopN, rate)
	emit := func([]float64) {}
	sg.Process(signal, emit) // warm up
	if got := testing.AllocsPerRun(200, func() { sg.Process(signal, emit) }); got != 0 {
		t.Errorf("Process allocates %g/op, want 0", got)
	}
}

func TestOverlapSTFTBitExactWithBatch(t *testing.T) {
	const (
		rate    = 44100.0
		windowN = 2205
		hopN    = 441
	)
	signal := streamTestSignal(windowN*4, rate)
	o := NewOverlapSTFT(windowN)
	plan := PlanFFT(NextPowerOfTwo(windowN))
	var ref []float64
	var scr FFTScratch
	frames := 0
	for off := 0; off+hopN <= len(signal); off += hopN {
		o.Append(signal[off : off+hopN])
		if !o.Full() {
			continue
		}
		got := o.Spectrum(Hann)
		winStart := off + hopN - windowN
		ref = plan.WindowedSpectrumScratch(ref, signal[winStart:winStart+windowN], Hann, &scr)
		if len(got) != len(ref) {
			t.Fatalf("spectrum length %d != batch %d", len(got), len(ref))
		}
		for k := range got {
			if got[k] != ref[k] {
				t.Fatalf("frame at sample %d bin %d: streaming %v != batch %v",
					winStart, k, got[k], ref[k])
			}
		}
		frames++
	}
	if want := (len(signal)-windowN)/hopN + 1; frames != want {
		t.Errorf("computed %d frames, want %d", frames, want)
	}
}

func TestOverlapSTFTAppendOversizedKeepsNewest(t *testing.T) {
	const windowN = 8
	o := NewOverlapSTFT(windowN)
	long := make([]float64, 3*windowN)
	for i := range long {
		long[i] = float64(i)
	}
	o.Append(long)
	if !o.Full() {
		t.Fatal("oversized append did not fill the ring")
	}
	win := o.Window()
	for i, x := range win {
		if want := float64(len(long) - windowN + i); x != want {
			t.Fatalf("window[%d] = %g, want %g (newest %d samples)", i, x, want, windowN)
		}
	}
}

func TestOverlapSTFTSpectrumAllocs(t *testing.T) {
	const rate, windowN, hopN = 44100.0, 2205, 441
	o := NewOverlapSTFT(windowN)
	signal := streamTestSignal(windowN, rate)
	o.Append(signal)
	o.Spectrum(Hann) // warm up scratch
	hop := signal[:hopN]
	if got := testing.AllocsPerRun(100, func() {
		o.Append(hop)
		o.Spectrum(Hann)
	}); got != 0 {
		t.Errorf("Append+Spectrum allocates %g/op, want 0", got)
	}
}
