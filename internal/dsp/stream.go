package dsp

import (
	"fmt"
	"math"
)

// This file holds the incremental transform kernels of the streaming
// detection path: a sliding Goertzel bank that emits a full-window
// magnitude vector every hop without retaining samples, and an
// overlap-save STFT front end that re-reads the retained
// window-minus-hop overlap from a ring instead of re-capturing it.
//
// Both kernels are bit-exact with their batch counterparts: a window
// emitted by SlidingGoertzel equals GoertzelPlan.MagnitudesInto over
// the same samples (same recursion, same operation order per
// frequency), and an OverlapSTFT frame equals
// FFTPlan.WindowedSpectrumScratch over the same samples. At
// hop == window the streaming path therefore reproduces the batch
// path's output exactly — the equivalence the streaming controller's
// tests and CI gate on.

// SlidingGoertzel evaluates a bank of Goertzel filters over a sliding
// window of WindowN samples advancing by HopN samples, incrementally:
// each input sample is consumed once, state is O(banks × frequencies),
// and no sample history is kept at all. It is implemented as
// WindowN/HopN staggered resonator banks — bank b starts at sample
// b·HopN, runs the standard Goertzel recursion for WindowN samples,
// emits its magnitudes, and restarts — so every emitted window is
// computed by exactly the per-window recursion of
// GoertzelPlan.MagnitudesInto, making the sliding output bit-exact
// with batch analysis of the same window. (A recursive per-sample
// sliding DFT would cost less per hop but drifts numerically and only
// handles bin-aligned frequencies; MDN tones are not bin-aligned.)
//
// State is reused between calls, so a SlidingGoertzel is not safe for
// concurrent use; give each stream its own.
type SlidingGoertzel struct {
	// SampleRate is the rate the coefficients were derived for.
	SampleRate float64
	// WindowN is the analysis window length in samples.
	WindowN int
	// HopN is the hop (emission stride) in samples.
	HopN int

	freqs []float64
	coeff []float64 // 2*cos(2*pi*f/rate) per frequency

	// banks*nf resonator state, laid out bank-major: bank b's state
	// for frequency j is s1[b*nf+j].
	s1, s2 []float64
	// startIn[b] counts samples until bank b begins its first window;
	// remaining[b] counts samples until bank b emits.
	startIn   []int
	remaining []int

	mags []float64 // emission scratch, one magnitude per frequency
}

// NewSlidingGoertzel builds a sliding bank for the given frequencies.
// windowN must be a positive multiple of hopN so each hop boundary
// completes exactly one window; it panics otherwise, because a
// misaligned hop is a programming error.
func NewSlidingGoertzel(freqs []float64, sampleRate float64, windowN, hopN int) *SlidingGoertzel {
	if hopN <= 0 || windowN <= 0 || windowN%hopN != 0 {
		panic(fmt.Sprintf("dsp: SlidingGoertzel window %d is not a positive multiple of hop %d", windowN, hopN))
	}
	banks := windowN / hopN
	nf := len(freqs)
	s := &SlidingGoertzel{
		SampleRate: sampleRate,
		WindowN:    windowN,
		HopN:       hopN,
		freqs:      append([]float64(nil), freqs...),
		coeff:      make([]float64, nf),
		s1:         make([]float64, banks*nf),
		s2:         make([]float64, banks*nf),
		startIn:    make([]int, banks),
		remaining:  make([]int, banks),
		mags:       make([]float64, nf),
	}
	for j, f := range s.freqs {
		s.coeff[j] = 2 * math.Cos(2*math.Pi*f/sampleRate)
	}
	s.Reset()
	return s
}

// Freqs returns the planned frequencies (shared slice; read-only).
func (s *SlidingGoertzel) Freqs() []float64 { return s.freqs }

// Banks returns the number of staggered resonator banks
// (WindowN / HopN).
func (s *SlidingGoertzel) Banks() int { return len(s.startIn) }

// Reset discards all resonator state and restarts the stagger: the
// next sample fed to Process is sample zero of the first window.
func (s *SlidingGoertzel) Reset() {
	for i := range s.s1 {
		s.s1[i] = 0
		s.s2[i] = 0
	}
	for b := range s.startIn {
		s.startIn[b] = b * s.HopN
		s.remaining[b] = s.WindowN
	}
}

// Process consumes samples in order, advancing every active bank once
// per sample, and calls emit each time a bank completes a window. The
// magnitude slice passed to emit is scratch owned by the bank, valid
// until Process continues — copy it to retain. Feeding HopN samples
// per call yields exactly one emission per call once the first window
// has filled. Process allocates nothing.
func (s *SlidingGoertzel) Process(samples []float64, emit func(mags []float64)) {
	nf := len(s.freqs)
	if nf == 0 {
		return
	}
	coeff := s.coeff
	for _, x := range samples {
		for b := range s.startIn {
			if s.startIn[b] > 0 {
				s.startIn[b]--
				continue
			}
			s1 := s.s1[b*nf : (b+1)*nf]
			s2 := s.s2[b*nf : (b+1)*nf]
			for j, c := range coeff {
				s0 := x + c*s1[j] - s2[j]
				s2[j] = s1[j]
				s1[j] = s0
			}
			s.remaining[b]--
			if s.remaining[b] == 0 {
				for j := range s.mags {
					power := s1[j]*s1[j] + s2[j]*s2[j] - coeff[j]*s1[j]*s2[j]
					if power < 0 {
						power = 0
					}
					s.mags[j] = math.Sqrt(power)
				}
				for j := range s1 {
					s1[j] = 0
					s2[j] = 0
				}
				s.remaining[b] = s.WindowN
				emit(s.mags)
			}
		}
	}
}

// OverlapSTFT is the streaming front end of the FFT detection method:
// a sample ring of one window plus per-hop spectrum evaluation. Each
// hop appends only the new samples; the window-minus-hop overlap is
// saved in the ring and re-read rather than re-captured — the
// overlap-save discipline, applied to analysis frames. Frame spectra
// are computed with the cached FFTPlan over caller-owned scratch, so
// steady-state frames allocate nothing and match
// FFTPlan.WindowedSpectrumScratch over the same window bit for bit.
//
// An OverlapSTFT is not safe for concurrent use.
type OverlapSTFT struct {
	// WindowN is the analysis window length in samples.
	WindowN int

	ring   []float64 // capacity WindowN, write index w
	w      int
	filled int

	lin  []float64 // linearized window scratch
	mags []float64 // spectrum magnitudes scratch
	plan *FFTPlan
	scr  FFTScratch
}

// NewOverlapSTFT builds a streaming STFT over windows of windowN
// samples. windowN must be positive.
func NewOverlapSTFT(windowN int) *OverlapSTFT {
	if windowN <= 0 {
		panic("dsp: OverlapSTFT requires a positive window")
	}
	return &OverlapSTFT{
		WindowN: windowN,
		ring:    make([]float64, windowN),
		lin:     make([]float64, windowN),
		plan:    PlanFFT(NextPowerOfTwo(windowN)),
	}
}

// Append pushes new samples into the ring, discarding the oldest when
// full. Appending more than WindowN samples at once keeps only the
// newest WindowN.
func (o *OverlapSTFT) Append(samples []float64) {
	if len(samples) > o.WindowN {
		samples = samples[len(samples)-o.WindowN:]
	}
	for _, x := range samples {
		o.ring[o.w] = x
		o.w++
		if o.w == o.WindowN {
			o.w = 0
		}
	}
	o.filled += len(samples)
	if o.filled > o.WindowN {
		o.filled = o.WindowN
	}
}

// Full reports whether a complete window has been appended.
func (o *OverlapSTFT) Full() bool { return o.filled == o.WindowN }

// Reset discards the ring contents.
func (o *OverlapSTFT) Reset() {
	o.w = 0
	o.filled = 0
}

// Window writes the current window (oldest sample first) into the
// returned slice, which is scratch owned by the OverlapSTFT, valid
// until the next Append. It is only meaningful once Full.
func (o *OverlapSTFT) Window() []float64 {
	n := copy(o.lin, o.ring[o.w:])
	copy(o.lin[n:], o.ring[:o.w])
	return o.lin
}

// Spectrum computes the windowed half-spectrum magnitudes of the
// current window under win, bit-exact with
// PlanFFT(NextPowerOfTwo(WindowN)).WindowedSpectrumScratch over the
// same samples. The returned slice is scratch owned by the
// OverlapSTFT, valid until the next Spectrum call. Steady-state calls
// allocate nothing.
func (o *OverlapSTFT) Spectrum(win Window) []float64 {
	o.mags = o.plan.WindowedSpectrumScratch(o.mags, o.Window(), win, &o.scr)
	return o.mags
}

// FFTSize returns the transform length used by Spectrum.
func (o *OverlapSTFT) FFTSize() int { return o.plan.N }
