package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMelRoundTripProperty(t *testing.T) {
	f := func(hz float64) bool {
		hz = math.Abs(math.Mod(hz, 20000))
		back := MelToHz(HzToMel(hz))
		return math.Abs(back-hz) < 1e-6*(1+hz)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMelMonotonic(t *testing.T) {
	prev := HzToMel(0)
	for hz := 10.0; hz <= 20000; hz += 10 {
		m := HzToMel(hz)
		if m <= prev {
			t.Fatalf("mel scale not monotonic at %g Hz", hz)
		}
		prev = m
	}
}

func TestMelKnownValues(t *testing.T) {
	// 1000 Hz is ~999.99 mel under the O'Shaughnessy formula.
	if m := HzToMel(1000); math.Abs(m-999.99) > 0.5 {
		t.Errorf("HzToMel(1000) = %g, want ~1000", m)
	}
	if m := HzToMel(0); m != 0 {
		t.Errorf("HzToMel(0) = %g, want 0", m)
	}
}

func TestMelFilterBankShapes(t *testing.T) {
	const (
		nf         = 40
		fftSize    = 2048
		sampleRate = 44100.0
	)
	bank := NewMelFilterBank(nf, fftSize, sampleRate, 0, 8000)
	if bank.NumFilters != nf || len(bank.CenterHz) != nf {
		t.Fatalf("bad bank shape: %d filters, %d centers", bank.NumFilters, len(bank.CenterHz))
	}
	for i := 1; i < nf; i++ {
		if bank.CenterHz[i] <= bank.CenterHz[i-1] {
			t.Fatalf("centre frequencies not increasing at %d", i)
		}
	}
	// Mel spacing between centres should be near-constant.
	first := HzToMel(bank.CenterHz[1]) - HzToMel(bank.CenterHz[0])
	last := HzToMel(bank.CenterHz[nf-1]) - HzToMel(bank.CenterHz[nf-2])
	if math.Abs(first-last) > 0.01*first {
		t.Errorf("mel spacing drifts: first %g, last %g", first, last)
	}
}

func TestMelFilterBankLocalisesTone(t *testing.T) {
	const (
		nf         = 64
		fftSize    = 4096
		sampleRate = 44100.0
	)
	bank := NewMelFilterBank(nf, fftSize, sampleRate, 50, 8000)
	x := sine(1000, sampleRate, fftSize)
	energies := bank.Apply(PowerSpectrum(FFTReal(x)))
	best := 0
	for i, e := range energies {
		if e > energies[best] {
			best = i
		}
	}
	if math.Abs(bank.CenterHz[best]-1000) > 150 {
		t.Errorf("tone at 1000 Hz mapped to band centred at %g Hz", bank.CenterHz[best])
	}
}

func TestMelFilterBankClampsToNyquist(t *testing.T) {
	bank := NewMelFilterBank(10, 1024, 8000, 0, 100000)
	for _, c := range bank.CenterHz {
		if c > 4000 {
			t.Errorf("centre %g Hz above Nyquist", c)
		}
	}
}

func TestMelFilterBankPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero filters":  func() { NewMelFilterBank(0, 1024, 44100, 0, 8000) },
		"inverted band": func() { NewMelFilterBank(10, 1024, 44100, 5000, 100) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMelApplyShortSpectrum(t *testing.T) {
	bank := NewMelFilterBank(8, 1024, 44100, 0, 8000)
	out := bank.Apply([]float64{1, 2, 3}) // shorter than half spectrum
	if len(out) != 8 {
		t.Fatalf("len = %d, want 8", len(out))
	}
}
