package dsp

import "math"

// HzToMel converts a frequency in Hz to the mel scale using the
// O'Shaughnessy formula (the one used by common audio toolkits, and by
// the paper's mel-scaled spectrograms).
func HzToMel(hz float64) float64 {
	return 2595 * math.Log10(1+hz/700)
}

// MelToHz converts a mel value back to Hz.
func MelToHz(mel float64) float64 {
	return 700 * (math.Pow(10, mel/2595) - 1)
}

// MelFilterBank is a set of triangular filters spaced evenly on the
// mel scale, used to produce mel-scaled spectrograms (Figures 3b, 4,
// 5b/5d and 6 of the paper).
type MelFilterBank struct {
	// NumFilters is the number of triangular filters.
	NumFilters int
	// FFTSize is the transform length the bank was built for.
	FFTSize int
	// SampleRate is the sample rate in Hz.
	SampleRate float64
	// CenterHz holds the centre frequency of each filter in Hz.
	CenterHz []float64

	weights [][]float64 // per filter: weight per FFT bin (half spectrum)
}

// NewMelFilterBank builds a bank of numFilters triangular mel filters
// covering [minHz, maxHz] for spectra of length fftSize/2+1.
func NewMelFilterBank(numFilters, fftSize int, sampleRate, minHz, maxHz float64) *MelFilterBank {
	if numFilters <= 0 || fftSize <= 0 || sampleRate <= 0 {
		panic("dsp: NewMelFilterBank requires positive parameters")
	}
	if maxHz <= minHz {
		panic("dsp: NewMelFilterBank requires maxHz > minHz")
	}
	nyquist := sampleRate / 2
	if maxHz > nyquist {
		maxHz = nyquist
	}
	melMin := HzToMel(minHz)
	melMax := HzToMel(maxHz)
	// numFilters filters need numFilters+2 edge points.
	edges := make([]float64, numFilters+2)
	for i := range edges {
		mel := melMin + (melMax-melMin)*float64(i)/float64(numFilters+1)
		edges[i] = MelToHz(mel)
	}
	half := fftSize/2 + 1
	bank := &MelFilterBank{
		NumFilters: numFilters,
		FFTSize:    fftSize,
		SampleRate: sampleRate,
		CenterHz:   make([]float64, numFilters),
		weights:    make([][]float64, numFilters),
	}
	for f := 0; f < numFilters; f++ {
		lo, mid, hi := edges[f], edges[f+1], edges[f+2]
		bank.CenterHz[f] = mid
		w := make([]float64, half)
		for k := 0; k < half; k++ {
			hz := BinFrequency(k, fftSize, sampleRate)
			switch {
			case hz < lo || hz > hi:
				// outside the triangle
			case hz <= mid && mid > lo:
				w[k] = (hz - lo) / (mid - lo)
			case hz > mid && hi > mid:
				w[k] = (hi - hz) / (hi - mid)
			}
		}
		bank.weights[f] = w
	}
	return bank
}

// Apply projects a half-spectrum (len FFTSize/2+1 power or magnitude
// values) onto the filter bank, returning one energy per filter.
func (b *MelFilterBank) Apply(spectrum []float64) []float64 {
	return b.ApplyInto(nil, spectrum)
}

// ApplyInto is Apply writing into dst (reusing its capacity), so
// steady-state projections are allocation-free.
func (b *MelFilterBank) ApplyInto(dst, spectrum []float64) []float64 {
	dst = growFloat(dst, b.NumFilters)
	for f, w := range b.weights {
		var sum float64
		n := len(spectrum)
		if len(w) < n {
			n = len(w)
		}
		for k := 0; k < n; k++ {
			sum += w[k] * spectrum[k]
		}
		dst[f] = sum
	}
	return dst
}
