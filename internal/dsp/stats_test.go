package dsp

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFQuantiles(t *testing.T) {
	var c CDF
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	if c.Len() != 100 {
		t.Fatalf("len = %d", c.Len())
	}
	if q := c.Quantile(0); q != 1 {
		t.Errorf("q0 = %g, want 1", q)
	}
	if q := c.Quantile(1); q != 100 {
		t.Errorf("q1 = %g, want 100", q)
	}
	if q := c.Quantile(0.5); math.Abs(q-50.5) > 1e-9 {
		t.Errorf("median = %g, want 50.5", q)
	}
	if q := c.Quantile(0.9); math.Abs(q-90.1) > 1e-9 {
		t.Errorf("p90 = %g, want 90.1", q)
	}
}

func TestCDFAt(t *testing.T) {
	var c CDF
	for _, v := range []float64{1, 2, 2, 3} {
		c.Add(v)
	}
	cases := []struct {
		v    float64
		want float64
	}{{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {9, 1}}
	for _, tc := range cases {
		if got := c.At(tc.v); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("At(%g) = %g, want %g", tc.v, got, tc.want)
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if !math.IsNaN(c.Quantile(0.5)) || !math.IsNaN(c.Mean()) {
		t.Error("empty CDF should return NaN quantile/mean")
	}
	if c.At(1) != 0 {
		t.Error("empty CDF At should be 0")
	}
	if !strings.Contains(c.String(), "empty") {
		t.Errorf("String() = %q", c.String())
	}
}

func TestCDFMeanAndString(t *testing.T) {
	var c CDF
	c.Add(2)
	c.Add(4)
	if m := c.Mean(); m != 3 {
		t.Errorf("mean = %g", m)
	}
	if !strings.Contains(c.String(), "n=2") {
		t.Errorf("String() = %q", c.String())
	}
}

func TestCDFSeriesSortedProperty(t *testing.T) {
	f := func(vals []float64) bool {
		var c CDF
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			c.Add(v)
		}
		values, probs := c.Series()
		if len(values) != len(probs) {
			return false
		}
		if !sort.Float64sAreSorted(values) {
			return false
		}
		for i, p := range probs {
			want := float64(i+1) / float64(len(probs))
			if math.Abs(p-want) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCDFQuantileMonotoneProperty(t *testing.T) {
	f := func(vals []float64, a, b float64) bool {
		var c CDF
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			c.Add(v)
		}
		if c.Len() == 0 {
			return true
		}
		qa := math.Mod(math.Abs(a), 1)
		qb := math.Mod(math.Abs(b), 1)
		if qa > qb {
			qa, qb = qb, qa
		}
		return c.Quantile(qa) <= c.Quantile(qb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRMSAndMeanAbs(t *testing.T) {
	if RMS(nil) != 0 || MeanAbs(nil) != 0 {
		t.Error("empty input should give 0")
	}
	x := []float64{3, -4}
	if got := RMS(x); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMS = %g", got)
	}
	if got := MeanAbs(x); got != 3.5 {
		t.Errorf("MeanAbs = %g", got)
	}
	// RMS of a unit sine is 1/sqrt(2).
	s := sine(440, 44100, 44100)
	if got := RMS(s); math.Abs(got-1/math.Sqrt2) > 0.01 {
		t.Errorf("sine RMS = %g, want %g", got, 1/math.Sqrt2)
	}
}
