package dsp

import "sort"

// Peak is a local maximum found in a spectrum.
type Peak struct {
	// Bin is the FFT bin index.
	Bin int
	// Frequency is the bin centre frequency in Hz.
	Frequency float64
	// Power is the power (or magnitude, matching the input) at the bin.
	Power float64
}

// FindPeaks locates local maxima in a half spectrum that exceed
// threshold, keeping only maxima separated by at least minSeparationHz
// (stronger peaks win ties). Results are sorted by descending power.
//
// spectrum is indexed by FFT bin; fftSize and sampleRate translate
// bins to frequencies.
func FindPeaks(spectrum []float64, fftSize int, sampleRate, threshold, minSeparationHz float64) []Peak {
	var candidates []Peak
	for k := 1; k < len(spectrum)-1; k++ {
		v := spectrum[k]
		if v < threshold {
			continue
		}
		if v >= spectrum[k-1] && v > spectrum[k+1] {
			candidates = append(candidates, Peak{
				Bin:       k,
				Frequency: BinFrequency(k, fftSize, sampleRate),
				Power:     v,
			})
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].Power != candidates[j].Power {
			return candidates[i].Power > candidates[j].Power
		}
		return candidates[i].Bin < candidates[j].Bin
	})
	if minSeparationHz <= 0 {
		return candidates
	}
	var out []Peak
	for _, c := range candidates {
		ok := true
		for _, kept := range out {
			d := c.Frequency - kept.Frequency
			if d < 0 {
				d = -d
			}
			if d < minSeparationHz {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, c)
		}
	}
	return out
}

// TopPeaks returns at most n of the strongest peaks from FindPeaks.
func TopPeaks(spectrum []float64, fftSize int, sampleRate, threshold, minSeparationHz float64, n int) []Peak {
	peaks := FindPeaks(spectrum, fftSize, sampleRate, threshold, minSeparationHz)
	if len(peaks) > n {
		peaks = peaks[:n]
	}
	return peaks
}
