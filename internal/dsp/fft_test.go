package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestIsPowerOfTwo(t *testing.T) {
	cases := map[int]bool{
		-4: false, 0: false, 1: true, 2: true, 3: false,
		4: true, 1024: true, 1023: false, 1 << 20: true,
	}
	for n, want := range cases {
		if got := IsPowerOfTwo(n); got != want {
			t.Errorf("IsPowerOfTwo(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestNextPowerOfTwo(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 1000: 1024, 1024: 1024, 1025: 2048}
	for n, want := range cases {
		if got := NextPowerOfTwo(n); got != want {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestNextPowerOfTwoPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	NextPowerOfTwo(0)
}

func TestFFTPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length 3")
		}
	}()
	FFT(make([]complex128, 3))
}

func TestFFTImpulse(t *testing.T) {
	// FFT of a unit impulse is all ones.
	x := make([]complex128, 16)
	x[0] = 1
	FFT(x)
	for k, v := range x {
		if !almostEqual(real(v), 1, 1e-12) || !almostEqual(imag(v), 0, 1e-12) {
			t.Errorf("bin %d = %v, want 1", k, v)
		}
	}
}

func TestFFTConstant(t *testing.T) {
	// FFT of a constant signal concentrates all energy in bin 0.
	n := 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = 2.5
	}
	FFT(x)
	if !almostEqual(real(x[0]), 2.5*float64(n), 1e-9) {
		t.Errorf("bin 0 = %v, want %v", x[0], 2.5*float64(n))
	}
	for k := 1; k < n; k++ {
		if cmplx.Abs(x[k]) > 1e-9 {
			t.Errorf("bin %d = %v, want 0", k, x[k])
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	// A bin-aligned cosine puts N/2 magnitude at +/-k.
	n := 1024
	k := 37
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Cos(2*math.Pi*float64(k)*float64(i)/float64(n)), 0)
	}
	FFT(x)
	want := float64(n) / 2
	if got := cmplx.Abs(x[k]); !almostEqual(got, want, 1e-6) {
		t.Errorf("bin %d magnitude = %g, want %g", k, got, want)
	}
	if got := cmplx.Abs(x[n-k]); !almostEqual(got, want, 1e-6) {
		t.Errorf("bin %d magnitude = %g, want %g", n-k, got, want)
	}
	for b := 0; b < n; b++ {
		if b == k || b == n-k {
			continue
		}
		if cmplx.Abs(x[b]) > 1e-6 {
			t.Errorf("bin %d magnitude = %g, want ~0", b, cmplx.Abs(x[b]))
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 8, 256, 4096} {
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		FFT(x)
		IFFT(x)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				t.Fatalf("n=%d sample %d: got %v want %v", n, i, x[i], orig[i])
			}
		}
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	// Property: FFT(a*x + b*y) == a*FFT(x) + b*FFT(y).
	f := func(seed int64, a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		// Bound scalars to keep rounding comparable.
		a = math.Mod(a, 100)
		b = math.Mod(b, 100)
		rng := rand.New(rand.NewSource(seed))
		const n = 128
		x := make([]complex128, n)
		y := make([]complex128, n)
		sum := make([]complex128, n)
		for i := 0; i < n; i++ {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			y[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			sum[i] = complex(a, 0)*x[i] + complex(b, 0)*y[i]
		}
		FFT(x)
		FFT(y)
		FFT(sum)
		for i := 0; i < n; i++ {
			want := complex(a, 0)*x[i] + complex(b, 0)*y[i]
			if cmplx.Abs(sum[i]-want) > 1e-6*(1+cmplx.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFFTParsevalProperty(t *testing.T) {
	// Property: sum |x|^2 == (1/N) sum |X|^2.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 256
		x := make([]complex128, n)
		var timeEnergy float64
		for i := range x {
			x[i] = complex(rng.NormFloat64(), 0)
			timeEnergy += real(x[i]) * real(x[i])
		}
		FFT(x)
		var freqEnergy float64
		for _, v := range x {
			freqEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		freqEnergy /= float64(n)
		return almostEqual(timeEnergy, freqEnergy, 1e-6*(1+timeEnergy))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFFTRealPadsToPowerOfTwo(t *testing.T) {
	x := make([]float64, 100)
	x[0] = 1
	spec := FFTReal(x)
	if len(spec) != 128 {
		t.Fatalf("len = %d, want 128", len(spec))
	}
	if FFTReal(nil) != nil {
		t.Error("FFTReal(nil) should be nil")
	}
}

func TestMagnitudesAndPowerSpectrum(t *testing.T) {
	x := []complex128{3 + 4i, 0, 1i, 2}
	mags := Magnitudes(x)
	if len(mags) != 3 {
		t.Fatalf("len(mags) = %d, want 3", len(mags))
	}
	if !almostEqual(mags[0], 5, 1e-12) {
		t.Errorf("mags[0] = %g, want 5", mags[0])
	}
	pow := PowerSpectrum(x)
	if !almostEqual(pow[0], 25, 1e-12) {
		t.Errorf("pow[0] = %g, want 25", pow[0])
	}
	if Magnitudes(nil) != nil || PowerSpectrum(nil) != nil {
		t.Error("empty input should yield nil")
	}
}

func TestBinFrequencyRoundTrip(t *testing.T) {
	const (
		fftSize    = 8192
		sampleRate = 44100.0
	)
	for _, hz := range []float64{100, 440, 500, 999.5, 5000, 20000} {
		k := FrequencyBin(hz, fftSize, sampleRate)
		back := BinFrequency(k, fftSize, sampleRate)
		if math.Abs(back-hz) > BinResolution(fftSize, sampleRate) {
			t.Errorf("round trip %g Hz -> bin %d -> %g Hz (res %g)",
				hz, k, back, BinResolution(fftSize, sampleRate))
		}
	}
	if FrequencyBin(-10, fftSize, sampleRate) != 0 {
		t.Error("negative frequency should clamp to bin 0")
	}
	if FrequencyBin(1e9, fftSize, sampleRate) != fftSize/2 {
		t.Error("above-Nyquist frequency should clamp to fftSize/2")
	}
}

func TestFFTZeroAndOneLength(t *testing.T) {
	FFT(nil) // must not panic
	one := []complex128{5 + 2i}
	FFT(one)
	if one[0] != 5+2i {
		t.Errorf("FFT of singleton changed value: %v", one[0])
	}
	IFFT(one)
	if cmplx.Abs(one[0]-(5+2i)) > 1e-12 {
		t.Errorf("IFFT of singleton changed value: %v", one[0])
	}
}

func BenchmarkFFT2048(b *testing.B) {
	x := make([]complex128, 2048)
	rng := rand.New(rand.NewSource(7))
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	work := make([]complex128, len(x))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, x)
		FFT(work)
	}
}

func BenchmarkGoertzelVsFFT(b *testing.B) {
	// Ablation: single-frequency check via Goertzel vs full FFT.
	const n = 2048
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = math.Sin(2 * math.Pi * 440 * float64(i) / 44100)
	}
	b.Run("goertzel-1-freq", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Goertzel(samples, 440, 44100)
		}
	})
	b.Run("fft-full", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]complex128, n)
		for i := 0; i < b.N; i++ {
			for j, v := range samples {
				buf[j] = complex(v, 0)
			}
			FFT(buf)
		}
	})
}

func TestWindowedSpectrum(t *testing.T) {
	x := sine(1000, 44100, 2205)
	mags, fftSize := WindowedSpectrum(x, Hann)
	if fftSize != 4096 {
		t.Fatalf("fftSize = %d", fftSize)
	}
	if len(mags) != fftSize/2+1 {
		t.Fatalf("len(mags) = %d", len(mags))
	}
	peak := 0
	for k := range mags {
		if mags[k] > mags[peak] {
			peak = k
		}
	}
	if hz := BinFrequency(peak, fftSize, 44100); math.Abs(hz-1000) > 25 {
		t.Errorf("peak at %g Hz, want ~1000", hz)
	}
	// The input must not be modified.
	if x[1000] == 0 {
		t.Skip("degenerate sample")
	}
	orig := sine(1000, 44100, 2205)
	for i := range x {
		if x[i] != orig[i] {
			t.Fatal("WindowedSpectrum modified its input")
		}
	}
	if m, n := WindowedSpectrum(nil, Hann); m != nil || n != 0 {
		t.Error("empty input should give nil")
	}
}

func TestWindowedPowerSpectrumConsistent(t *testing.T) {
	x := sine(700, 44100, 1024)
	mags, n1 := WindowedSpectrum(x, Hann)
	pows, n2 := WindowedPowerSpectrum(x, Hann)
	if n1 != n2 || len(mags) != len(pows) {
		t.Fatal("shape mismatch")
	}
	for k := range mags {
		if math.Abs(pows[k]-mags[k]*mags[k]) > 1e-9*(1+pows[k]) {
			t.Fatalf("bin %d: power %g != mag^2 %g", k, pows[k], mags[k]*mags[k])
		}
	}
	if p, n := WindowedPowerSpectrum(nil, Hann); p != nil || n != 0 {
		t.Error("empty input should give nil")
	}
}
