package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// FFTPlan holds everything precomputed for transforms of one length:
// the twiddle-factor table, the bit-reversal permutation, and (for the
// packed real-input transform) the half-length sub-plan and per-plan
// scratch pool. Plans are built once per size, cached globally, and
// safe for concurrent use — the per-call mutable state lives in pooled
// scratch, never on the plan itself.
//
// The planned entry points replace the per-call math.Sincos of the old
// transform with one table lookup per butterfly, which is where most
// of the controller hot path's time went.
type FFTPlan struct {
	// N is the transform length (a power of two).
	N int

	// twiddle[k] = exp(-2*pi*i*k/N) for k < N/2. Stage `size` of the
	// decimation-in-time transform reads it with stride N/size. The
	// same table provides the split coefficients of the packed
	// real-input transform.
	twiddle []complex128
	// rev is the bit-reversal permutation of 0..N-1.
	rev []int32
	// half is the N/2 plan driving RealSpectrumInto. nil when N == 1.
	half *FFTPlan

	scratch sync.Pool // *FFTScratch
}

// FFTScratch is the per-call mutable state of a planned transform: the
// packed complex input of the real transform, the half spectrum, and a
// float buffer for spectrum post-processing (STFT frame streaming).
//
// Plans normally rent one from a per-plan sync.Pool, which is the
// right trade for bursty callers — but the garbage collector may clear
// that pool between calls, so a long-lived periodic caller (a
// controller detector analysing one window every 50 ms forever) sees
// its scratch evaporate and re-allocate under GC pressure. Such
// callers hold their own FFTScratch and use the *Scratch entry points
// instead. The zero value is ready to use and grows to fit any plan;
// it is not safe for concurrent use.
type FFTScratch struct {
	z    []complex128 // len N/2: packed real input
	spec []complex128 // len N/2+1: half spectrum
	vals []float64    // len N/2+1: magnitudes or power
}

var planCache sync.Map // int -> *FFTPlan

// PlanFFT returns the cached plan for transforms of length n, building
// it on first use. n must be a positive power of two; PlanFFT panics
// otherwise, because a wrong length is a programming error. The
// returned plan is shared and safe for concurrent use.
func PlanFFT(n int) *FFTPlan {
	if !IsPowerOfTwo(n) {
		panic(fmt.Sprintf("dsp: PlanFFT length %d is not a power of two", n))
	}
	if v, ok := planCache.Load(n); ok {
		return v.(*FFTPlan)
	}
	p := newFFTPlan(n)
	actual, _ := planCache.LoadOrStore(n, p)
	return actual.(*FFTPlan)
}

func newFFTPlan(n int) *FFTPlan {
	p := &FFTPlan{N: n}
	half := n / 2
	p.twiddle = make([]complex128, half)
	for k := range p.twiddle {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		p.twiddle[k] = complex(c, s)
	}
	if n > 1 {
		p.rev = make([]int32, n)
		shift := 64 - uint(bits.Len(uint(n-1)))
		for i := 0; i < n; i++ {
			p.rev[i] = int32(bits.Reverse64(uint64(i)) >> shift)
		}
		p.half = PlanFFT(half)
	}
	p.scratch.New = func() interface{} {
		return &FFTScratch{
			z:    make([]complex128, half),
			spec: make([]complex128, half+1),
			vals: make([]float64, half+1),
		}
	}
	return p
}

func (p *FFTPlan) getScratch() *FFTScratch {
	return p.scratch.Get().(*FFTScratch)
}

// Transform computes the in-place forward FFT of x. len(x) must equal
// p.N.
func (p *FFTPlan) Transform(x []complex128) {
	p.checkLen(x)
	p.transform(x, 1)
}

// InverseTransform computes the in-place inverse FFT of x including
// the 1/N normalisation, so InverseTransform(Transform(x)) == x up to
// rounding.
func (p *FFTPlan) InverseTransform(x []complex128) {
	p.checkLen(x)
	p.transform(x, -1)
	inv := 1 / float64(p.N)
	for i := range x {
		x[i] = complex(real(x[i])*inv, imag(x[i])*inv)
	}
}

func (p *FFTPlan) checkLen(x []complex128) {
	if len(x) != p.N {
		panic(fmt.Sprintf("dsp: FFTPlan length mismatch: plan %d, input %d", p.N, len(x)))
	}
}

// transform runs the iterative decimation-in-time butterflies. sign is
// +1 for the forward transform, -1 for the inverse (which conjugates
// the twiddle factors).
func (p *FFTPlan) transform(x []complex128, sign float64) {
	n := p.N
	if n < 2 {
		return
	}
	for i, j := range p.rev {
		if int(j) > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	tw := p.twiddle
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		stride := n / size
		for start := 0; start < n; start += size {
			ti := 0
			for k := start; k < start+half; k++ {
				w := tw[ti]
				w = complex(real(w), sign*imag(w))
				ti += stride
				b := x[k+half] * w
				a := x[k]
				x[k] = a + b
				x[k+half] = a - b
			}
		}
	}
}

// RealSpectrumInto computes the half spectrum (N/2+1 non-negative
// frequency bins) of the real signal x, zero-padding when
// len(x) < p.N. It packs the N real samples into an N/2 complex
// transform — half the butterflies of promoting to complex — then
// unpacks with the split coefficients. dst is reused when it has
// capacity; the grown-or-reused slice is returned, so steady-state
// calls are allocation-free. len(x) must not exceed p.N.
func (p *FFTPlan) RealSpectrumInto(dst []complex128, x []float64) []complex128 {
	s := p.getScratch()
	dst = p.realSpectrumWindowed(dst, x, nil, s)
	p.scratch.Put(s)
	return dst
}

// realSpectrumWindowed is RealSpectrumInto with the window fused into
// the packing pass: sample i is scaled by coef[i]. A nil coef means no
// window. len(coef) must be >= len(x) when non-nil. s provides the
// packing buffer (grown to fit the plan if the caller's scratch is
// smaller).
func (p *FFTPlan) realSpectrumWindowed(dst []complex128, x []float64, coef []float64, s *FFTScratch) []complex128 {
	n := p.N
	if len(x) > n {
		panic(fmt.Sprintf("dsp: real input length %d exceeds plan length %d", len(x), n))
	}
	h := n / 2
	dst = growComplex(dst, h+1)
	if n == 1 {
		v := 0.0
		if len(x) > 0 {
			v = x[0]
			if coef != nil {
				v *= coef[0]
			}
		}
		dst[0] = complex(v, 0)
		return dst
	}
	s.z = growComplex(s.z, h)
	z := s.z
	m := len(x)
	full := m / 2 // pairs with both samples in range
	if coef == nil {
		for k := 0; k < full; k++ {
			z[k] = complex(x[2*k], x[2*k+1])
		}
	} else {
		for k := 0; k < full; k++ {
			z[k] = complex(x[2*k]*coef[2*k], x[2*k+1]*coef[2*k+1])
		}
	}
	for k := full; k < h; k++ {
		re := 0.0
		if 2*k < m {
			re = x[2*k]
			if coef != nil {
				re *= coef[2*k]
			}
		}
		z[k] = complex(re, 0)
	}
	p.half.transform(z, 1)

	// Split: with Z = FFT(z), X[k] = (A - i*w^k*B)/2 where
	// A = Z[k]+conj(Z[h-k]), B = Z[k]-conj(Z[h-k]), w = exp(-2πi/N).
	z0 := z[0]
	dst[0] = complex(real(z0)+imag(z0), 0)
	dst[h] = complex(real(z0)-imag(z0), 0)
	for k := 1; k < h; k++ {
		zk := z[k]
		zm := z[h-k]
		zm = complex(real(zm), -imag(zm))
		a := zk + zm
		b := zk - zm
		c := p.twiddle[k] * b
		// -i*c = complex(imag(c), -real(c))
		dst[k] = complex(0.5*(real(a)+imag(c)), 0.5*(imag(a)-real(c)))
	}
	return dst
}

// WindowedSpectrumInto windows x (without modifying it), zero-pads to
// p.N, and writes the half-spectrum magnitudes (p.N/2+1 values) into
// dst, reusing its capacity. It is the planned, allocation-free core
// of WindowedSpectrum.
func (p *FFTPlan) WindowedSpectrumInto(dst []float64, x []float64, win Window) []float64 {
	s := p.getScratch()
	dst = p.windowedInto(dst, x, win, false, s)
	p.scratch.Put(s)
	return dst
}

// WindowedPowerSpectrumInto is WindowedSpectrumInto producing power
// values (|X[k]|²).
func (p *FFTPlan) WindowedPowerSpectrumInto(dst []float64, x []float64, win Window) []float64 {
	s := p.getScratch()
	dst = p.windowedInto(dst, x, win, true, s)
	p.scratch.Put(s)
	return dst
}

// WindowedSpectrumScratch is WindowedSpectrumInto using the
// caller-owned workspace s instead of the plan's pooled scratch, for
// long-lived periodic callers whose steady state must survive GC
// clearing the pool (see FFTScratch).
func (p *FFTPlan) WindowedSpectrumScratch(dst []float64, x []float64, win Window, s *FFTScratch) []float64 {
	return p.windowedInto(dst, x, win, false, s)
}

// WindowedPowerSpectrumScratch is WindowedPowerSpectrumInto using the
// caller-owned workspace s instead of the plan's pooled scratch.
func (p *FFTPlan) WindowedPowerSpectrumScratch(dst []float64, x []float64, win Window, s *FFTScratch) []float64 {
	return p.windowedInto(dst, x, win, true, s)
}

func (p *FFTPlan) windowedInto(dst []float64, x []float64, win Window, power bool, s *FFTScratch) []float64 {
	spec := p.realSpectrumWindowed(s.spec[:0], x, win.coefficients(len(x)), s)
	s.spec = spec
	dst = growFloat(dst, len(spec))
	if power {
		powerInto(dst, spec)
	} else {
		magnitudesInto(dst, spec)
	}
	return dst
}

// MagnitudesInto writes |spec[k]| element-wise into dst, reusing its
// capacity, and returns the result. Unlike Magnitudes it does not
// halve the length: pass a half spectrum (e.g. from RealSpectrumInto)
// to get the non-negative frequency bins.
func MagnitudesInto(dst []float64, spec []complex128) []float64 {
	dst = growFloat(dst, len(spec))
	magnitudesInto(dst, spec)
	return dst
}

// PowerInto writes |spec[k]|² element-wise into dst, reusing its
// capacity, and returns the result.
func PowerInto(dst []float64, spec []complex128) []float64 {
	dst = growFloat(dst, len(spec))
	powerInto(dst, spec)
	return dst
}

func magnitudesInto(dst []float64, spec []complex128) {
	for i, c := range spec {
		re, im := real(c), imag(c)
		dst[i] = math.Sqrt(re*re + im*im)
	}
}

func powerInto(dst []float64, spec []complex128) {
	for i, c := range spec {
		re, im := real(c), imag(c)
		dst[i] = re*re + im*im
	}
}
