package dsp

import "math"

// Goertzel evaluates the magnitude of a single frequency component in
// a block of samples using the Goertzel algorithm. It is the cheap
// alternative to a full FFT when only a handful of known frequencies
// (an MDN frequency plan) must be checked.
//
// The returned value is comparable to the magnitude of the
// corresponding FFT bin of the same block.
func Goertzel(samples []float64, freq, sampleRate float64) float64 {
	n := len(samples)
	if n == 0 || sampleRate <= 0 {
		return 0
	}
	// Use the exact normalised frequency rather than the nearest
	// integer bin: MDN tones are not bin-aligned in general.
	w := 2 * math.Pi * freq / sampleRate
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, x := range samples {
		s0 = x + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	// Magnitude of the resonator state.
	power := s1*s1 + s2*s2 - coeff*s1*s2
	if power < 0 {
		power = 0
	}
	return math.Sqrt(power)
}

// GoertzelBank evaluates many frequencies over the same block. The
// result has one magnitude per requested frequency, in order.
func GoertzelBank(samples []float64, freqs []float64, sampleRate float64) []float64 {
	out := make([]float64, len(freqs))
	for i, f := range freqs {
		out[i] = Goertzel(samples, f, sampleRate)
	}
	return out
}

// GoertzelPower returns the normalised power (mean-square amplitude
// contribution) of freq in the block, i.e. magnitude scaled so that a
// unit-amplitude sinusoid at freq yields approximately 0.5.
func GoertzelPower(samples []float64, freq, sampleRate float64) float64 {
	n := float64(len(samples))
	if n == 0 {
		return 0
	}
	m := Goertzel(samples, freq, sampleRate)
	return (m / n) * (m / n) * 2
}
