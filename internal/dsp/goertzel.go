package dsp

import "math"

// Goertzel evaluates the magnitude of a single frequency component in
// a block of samples using the Goertzel algorithm. It is the cheap
// alternative to a full FFT when only a handful of known frequencies
// (an MDN frequency plan) must be checked.
//
// The returned value is comparable to the magnitude of the
// corresponding FFT bin of the same block.
func Goertzel(samples []float64, freq, sampleRate float64) float64 {
	n := len(samples)
	if n == 0 || sampleRate <= 0 {
		return 0
	}
	// Use the exact normalised frequency rather than the nearest
	// integer bin: MDN tones are not bin-aligned in general.
	w := 2 * math.Pi * freq / sampleRate
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, x := range samples {
		s0 = x + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	// Magnitude of the resonator state.
	power := s1*s1 + s2*s2 - coeff*s1*s2
	if power < 0 {
		power = 0
	}
	return math.Sqrt(power)
}

// GoertzelPlan evaluates a fixed bank of frequencies over sample
// blocks, precomputing the per-frequency resonator coefficients once
// and streaming each block in a single pass that advances every
// resonator — the planned counterpart of calling Goertzel per
// frequency, which re-derives the coefficient and re-reads the block
// once per watched tone.
//
// The resonator state is reused between calls, so a plan is NOT safe
// for concurrent use; give each goroutine its own (construction is
// cheap — one math.Cos per frequency).
type GoertzelPlan struct {
	// SampleRate is the rate the coefficients were derived for.
	SampleRate float64

	freqs  []float64
	coeff  []float64 // 2*cos(2*pi*f/rate) per frequency
	s1, s2 []float64 // resonator state, reset each block
}

// NewGoertzelPlan builds a plan for the given frequencies at
// sampleRate. The frequency slice is copied.
func NewGoertzelPlan(freqs []float64, sampleRate float64) *GoertzelPlan {
	g := &GoertzelPlan{
		SampleRate: sampleRate,
		freqs:      append([]float64(nil), freqs...),
		coeff:      make([]float64, len(freqs)),
		s1:         make([]float64, len(freqs)),
		s2:         make([]float64, len(freqs)),
	}
	for i, f := range g.freqs {
		g.coeff[i] = 2 * math.Cos(2*math.Pi*f/sampleRate)
	}
	return g
}

// Freqs returns the planned frequencies (shared slice; read-only).
func (g *GoertzelPlan) Freqs() []float64 { return g.freqs }

// MagnitudesInto streams the block once, advancing every resonator
// per sample, and writes one magnitude per planned frequency into
// dst (reusing its capacity). Results match Goertzel per frequency.
func (g *GoertzelPlan) MagnitudesInto(dst []float64, samples []float64) []float64 {
	nf := len(g.freqs)
	dst = growFloat(dst, nf)
	if nf == 0 {
		return dst
	}
	if len(samples) == 0 || g.SampleRate <= 0 {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	coeff, s1, s2 := g.coeff, g.s1, g.s2
	for j := range s1 {
		s1[j] = 0
		s2[j] = 0
	}
	for _, x := range samples {
		for j, c := range coeff {
			s0 := x + c*s1[j] - s2[j]
			s2[j] = s1[j]
			s1[j] = s0
		}
	}
	for j := range dst {
		power := s1[j]*s1[j] + s2[j]*s2[j] - coeff[j]*s1[j]*s2[j]
		if power < 0 {
			power = 0
		}
		dst[j] = math.Sqrt(power)
	}
	return dst
}

// GoertzelBank evaluates many frequencies over the same block in a
// single pass. The result has one magnitude per requested frequency,
// in order.
func GoertzelBank(samples []float64, freqs []float64, sampleRate float64) []float64 {
	return NewGoertzelPlan(freqs, sampleRate).MagnitudesInto(nil, samples)
}

// GoertzelPower returns the normalised power (mean-square amplitude
// contribution) of freq in the block, i.e. magnitude scaled so that a
// unit-amplitude sinusoid at freq yields approximately 0.5.
func GoertzelPower(samples []float64, freq, sampleRate float64) float64 {
	n := float64(len(samples))
	if n == 0 {
		return 0
	}
	m := Goertzel(samples, freq, sampleRate)
	return (m / n) * (m / n) * 2
}
