package dsp

import (
	"math"
	"testing"
)

func sine(freq, sampleRate float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Sin(2 * math.Pi * freq * float64(i) / sampleRate)
	}
	return out
}

func TestGoertzelMatchesFFTBin(t *testing.T) {
	const (
		n          = 4096
		sampleRate = 44100.0
	)
	// Pick a bin-aligned frequency so the FFT bin holds all energy.
	k := 100
	freq := BinFrequency(k, n, sampleRate)
	x := sine(freq, sampleRate, n)

	g := Goertzel(x, freq, sampleRate)
	spec := FFTReal(x)
	fftMag := Magnitudes(spec)[k]
	if math.Abs(g-fftMag) > 1e-6*fftMag {
		t.Errorf("Goertzel = %g, FFT bin = %g", g, fftMag)
	}
}

func TestGoertzelDetectsPresentTone(t *testing.T) {
	const sampleRate = 44100.0
	x := sine(700, sampleRate, 2048)
	present := Goertzel(x, 700, sampleRate)
	absent := Goertzel(x, 1500, sampleRate)
	if present < 10*absent {
		t.Errorf("present tone %g should dominate absent %g", present, absent)
	}
}

func TestGoertzelDiscriminates20Hz(t *testing.T) {
	// The paper's claim: ~20 Hz spacing suffices to tell tones apart.
	const sampleRate = 44100.0
	// 100 ms window gives 10 Hz resolution.
	n := int(0.1 * sampleRate)
	x := sine(1000, sampleRate, n)
	at1000 := Goertzel(x, 1000, sampleRate)
	at1020 := Goertzel(x, 1020, sampleRate)
	if at1000 < 3*at1020 {
		t.Errorf("tone at 1000 Hz (%g) should be well above response at 1020 Hz (%g)", at1000, at1020)
	}
}

func TestGoertzelEmptyAndInvalid(t *testing.T) {
	if Goertzel(nil, 440, 44100) != 0 {
		t.Error("nil samples should give 0")
	}
	if Goertzel([]float64{1, 2}, 440, 0) != 0 {
		t.Error("zero sample rate should give 0")
	}
}

func TestGoertzelBankOrder(t *testing.T) {
	const sampleRate = 44100.0
	x := sine(600, sampleRate, 4096)
	freqs := []float64{500, 600, 700}
	mags := GoertzelBank(x, freqs, sampleRate)
	if len(mags) != 3 {
		t.Fatalf("len = %d, want 3", len(mags))
	}
	if mags[1] < mags[0] || mags[1] < mags[2] {
		t.Errorf("bank should peak at 600 Hz: %v", mags)
	}
}

func TestGoertzelPowerUnitAmplitude(t *testing.T) {
	const sampleRate = 44100.0
	x := sine(441, sampleRate, 44100) // 1 s, bin-aligned at 1 Hz resolution
	p := GoertzelPower(x, 441, sampleRate)
	if math.Abs(p-0.5) > 0.05 {
		t.Errorf("unit sine power = %g, want ~0.5", p)
	}
	if GoertzelPower(nil, 441, sampleRate) != 0 {
		t.Error("empty input should give 0")
	}
}
