package dsp

import "math"

// Spectrogram holds the short-time Fourier transform of a signal:
// one spectrum row per analysis frame.
type Spectrogram struct {
	// SampleRate of the analysed signal in Hz.
	SampleRate float64
	// FFTSize is the transform length.
	FFTSize int
	// HopSize is the stride between frames in samples.
	HopSize int
	// Times holds the start time in seconds of each frame.
	Times []float64
	// Power holds, per frame, the half-spectrum power values
	// (FFTSize/2+1 bins).
	Power [][]float64
}

// STFT computes a short-time Fourier transform of x using the given
// window, fftSize and hopSize (both in samples). Frames that would run
// past the end of x are zero-padded. It returns nil when x is shorter
// than one hop.
func STFT(x []float64, sampleRate float64, fftSize, hopSize int, win Window) *Spectrogram {
	if len(x) == 0 || fftSize <= 0 || hopSize <= 0 {
		return nil
	}
	fftSize = NextPowerOfTwo(fftSize)
	coef := win.Coefficients(fftSize)
	nFrames := (len(x) + hopSize - 1) / hopSize
	sg := &Spectrogram{
		SampleRate: sampleRate,
		FFTSize:    fftSize,
		HopSize:    hopSize,
		Times:      make([]float64, 0, nFrames),
		Power:      make([][]float64, 0, nFrames),
	}
	buf := make([]complex128, fftSize)
	for start := 0; start < len(x); start += hopSize {
		for i := 0; i < fftSize; i++ {
			v := 0.0
			if start+i < len(x) {
				v = x[start+i] * coef[i]
			}
			buf[i] = complex(v, 0)
		}
		FFT(buf)
		sg.Times = append(sg.Times, float64(start)/sampleRate)
		sg.Power = append(sg.Power, PowerSpectrum(buf))
	}
	return sg
}

// NumFrames returns the number of analysis frames.
func (s *Spectrogram) NumFrames() int { return len(s.Power) }

// FrameDuration returns the hop interval in seconds.
func (s *Spectrogram) FrameDuration() float64 {
	return float64(s.HopSize) / s.SampleRate
}

// Mel projects every frame onto the given mel filter bank, producing a
// mel-scaled spectrogram: rows are frames, columns are mel bands. The
// bank must have been built for this spectrogram's FFTSize and
// SampleRate.
func (s *Spectrogram) Mel(bank *MelFilterBank) [][]float64 {
	out := make([][]float64, len(s.Power))
	for i, frame := range s.Power {
		out[i] = bank.Apply(frame)
	}
	return out
}

// DominantFrequency returns, for frame i, the frequency in Hz of the
// strongest bin at or above minHz, and its power. It returns (0, 0)
// for an out-of-range frame.
func (s *Spectrogram) DominantFrequency(i int, minHz float64) (hz, power float64) {
	if i < 0 || i >= len(s.Power) {
		return 0, 0
	}
	frame := s.Power[i]
	kMin := FrequencyBin(minHz, s.FFTSize, s.SampleRate)
	best := -1
	for k := kMin; k < len(frame); k++ {
		if best < 0 || frame[k] > frame[best] {
			best = k
		}
	}
	if best < 0 {
		return 0, 0
	}
	return BinFrequency(best, s.FFTSize, s.SampleRate), frame[best]
}

// PowerDB converts a power value to decibels with a -120 dB floor.
func PowerDB(p float64) float64 {
	const floor = -120
	if p <= 0 {
		return floor
	}
	db := 10 * math.Log10(p)
	if db < floor {
		return floor
	}
	return db
}

// AmplitudeDB converts a linear amplitude to decibels (20·log10) with
// a -120 dB floor.
func AmplitudeDB(a float64) float64 {
	const floor = -120
	if a <= 0 {
		return floor
	}
	db := 20 * math.Log10(a)
	if db < floor {
		return floor
	}
	return db
}

// DBToAmplitude converts decibels to a linear amplitude.
func DBToAmplitude(db float64) float64 {
	return math.Pow(10, db/20)
}
