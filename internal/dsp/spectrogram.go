package dsp

import (
	"math"
	"runtime"
	"sync"
)

// Spectrogram holds the short-time Fourier transform of a signal:
// one spectrum row per analysis frame.
type Spectrogram struct {
	// SampleRate of the analysed signal in Hz.
	SampleRate float64
	// FFTSize is the transform length.
	FFTSize int
	// HopSize is the stride between frames in samples.
	HopSize int
	// Times holds the start time in seconds of each frame.
	Times []float64
	// Power holds, per frame, the half-spectrum power values
	// (FFTSize/2+1 bins).
	Power [][]float64
}

// STFT computes a short-time Fourier transform of x using the given
// window, fftSize and hopSize (both in samples). Frames that would run
// past the end of x are zero-padded. It returns nil when x is shorter
// than one hop.
//
// It reuses one FFTPlan plus pooled scratch across all frames and
// packs every frame through the real-input transform; STFTParallel
// fans the frames out over goroutines.
func STFT(x []float64, sampleRate float64, fftSize, hopSize int, win Window) *Spectrogram {
	return STFTParallel(x, sampleRate, fftSize, hopSize, win, 1)
}

// STFTParallel is STFT with the frames divided among workers
// goroutines, each holding its own plan scratch. workers <= 0 uses
// GOMAXPROCS. Frames are independent, so the result is identical to
// the serial transform.
func STFTParallel(x []float64, sampleRate float64, fftSize, hopSize int, win Window, workers int) *Spectrogram {
	if len(x) == 0 || fftSize <= 0 || hopSize <= 0 {
		return nil
	}
	fftSize = NextPowerOfTwo(fftSize)
	p := PlanFFT(fftSize)
	coef := win.coefficients(fftSize)
	nFrames := (len(x) + hopSize - 1) / hopSize
	half := fftSize/2 + 1
	sg := &Spectrogram{
		SampleRate: sampleRate,
		FFTSize:    fftSize,
		HopSize:    hopSize,
		Times:      make([]float64, nFrames),
		Power:      make([][]float64, nFrames),
	}
	// One flat backing array instead of one allocation per frame.
	flat := make([]float64, nFrames*half)
	for f := 0; f < nFrames; f++ {
		sg.Times[f] = float64(f*hopSize) / sampleRate
		sg.Power[f] = flat[f*half : (f+1)*half : (f+1)*half]
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nFrames {
		workers = nFrames
	}
	doFrame := func(s *FFTScratch, f int) {
		start := f * hopSize
		end := start + fftSize
		if end > len(x) {
			end = len(x)
		}
		s.spec = p.realSpectrumWindowed(s.spec[:0], x[start:end], coef, s)
		powerInto(sg.Power[f], s.spec)
	}
	if workers <= 1 {
		s := p.getScratch()
		for f := 0; f < nFrames; f++ {
			doFrame(s, f)
		}
		p.scratch.Put(s)
		return sg
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := p.getScratch()
			for f := w; f < nFrames; f += workers {
				doFrame(s, f)
			}
			p.scratch.Put(s)
		}(w)
	}
	wg.Wait()
	return sg
}

// STFTFrames streams the windowed power spectrum of each frame to fn
// without materialising a Spectrogram: the power slice is pooled plan
// scratch reused between frames (valid only during the callback), so
// steady-state frames are allocation-free. Frame i starts at sample
// i*hopSize (time start seconds); the slice holds fftSize/2+1 bins of
// the NextPowerOfTwo(fftSize) transform. It reports the number of
// frames processed.
func STFTFrames(x []float64, sampleRate float64, fftSize, hopSize int, win Window, fn func(frame int, start float64, power []float64)) int {
	if len(x) == 0 || fftSize <= 0 || hopSize <= 0 {
		return 0
	}
	fftSize = NextPowerOfTwo(fftSize)
	p := PlanFFT(fftSize)
	coef := win.coefficients(fftSize)
	half := fftSize/2 + 1
	s := p.getScratch()
	nFrames := 0
	for start := 0; start < len(x); start += hopSize {
		end := start + fftSize
		if end > len(x) {
			end = len(x)
		}
		s.spec = p.realSpectrumWindowed(s.spec[:0], x[start:end], coef, s)
		powerInto(s.vals[:half], s.spec)
		fn(nFrames, float64(start)/sampleRate, s.vals[:half])
		nFrames++
	}
	p.scratch.Put(s)
	return nFrames
}

// NumFrames returns the number of analysis frames.
func (s *Spectrogram) NumFrames() int { return len(s.Power) }

// FrameDuration returns the hop interval in seconds.
func (s *Spectrogram) FrameDuration() float64 {
	return float64(s.HopSize) / s.SampleRate
}

// Mel projects every frame onto the given mel filter bank, producing a
// mel-scaled spectrogram: rows are frames, columns are mel bands. The
// bank must have been built for this spectrogram's FFTSize and
// SampleRate.
func (s *Spectrogram) Mel(bank *MelFilterBank) [][]float64 {
	out := make([][]float64, len(s.Power))
	// One flat backing array instead of one allocation per frame.
	flat := make([]float64, len(s.Power)*bank.NumFilters)
	for i, frame := range s.Power {
		row := flat[i*bank.NumFilters : (i+1)*bank.NumFilters : (i+1)*bank.NumFilters]
		out[i] = bank.ApplyInto(row, frame)
	}
	return out
}

// DominantFrequency returns, for frame i, the frequency in Hz of the
// strongest bin at or above minHz, and its power. It returns (0, 0)
// for an out-of-range frame.
func (s *Spectrogram) DominantFrequency(i int, minHz float64) (hz, power float64) {
	if i < 0 || i >= len(s.Power) {
		return 0, 0
	}
	frame := s.Power[i]
	kMin := FrequencyBin(minHz, s.FFTSize, s.SampleRate)
	best := -1
	for k := kMin; k < len(frame); k++ {
		if best < 0 || frame[k] > frame[best] {
			best = k
		}
	}
	if best < 0 {
		return 0, 0
	}
	return BinFrequency(best, s.FFTSize, s.SampleRate), frame[best]
}

// PowerDB converts a power value to decibels with a -120 dB floor.
func PowerDB(p float64) float64 {
	const floor = -120
	if p <= 0 {
		return floor
	}
	db := 10 * math.Log10(p)
	if db < floor {
		return floor
	}
	return db
}

// AmplitudeDB converts a linear amplitude to decibels (20·log10) with
// a -120 dB floor.
func AmplitudeDB(a float64) float64 {
	const floor = -120
	if a <= 0 {
		return floor
	}
	db := 20 * math.Log10(a)
	if db < floor {
		return floor
	}
	return db
}

// DBToAmplitude converts decibels to a linear amplitude.
func DBToAmplitude(db float64) float64 {
	return math.Pow(10, db/20)
}
