package dsp

import (
	"math"
	"testing"
)

func TestSTFTFrameCount(t *testing.T) {
	const sampleRate = 44100.0
	x := make([]float64, 44100) // 1 s
	sg := STFT(x, sampleRate, 2048, 512, Hann)
	if sg == nil {
		t.Fatal("nil spectrogram")
	}
	wantFrames := (len(x) + 511) / 512
	if sg.NumFrames() != wantFrames {
		t.Errorf("frames = %d, want %d", sg.NumFrames(), wantFrames)
	}
	if sg.FrameDuration() != 512.0/sampleRate {
		t.Errorf("frame duration = %g", sg.FrameDuration())
	}
	if len(sg.Power[0]) != 2048/2+1 {
		t.Errorf("spectrum width = %d", len(sg.Power[0]))
	}
}

func TestSTFTEmptyInput(t *testing.T) {
	if STFT(nil, 44100, 1024, 256, Hann) != nil {
		t.Error("empty input should give nil")
	}
	if STFT([]float64{1}, 44100, 0, 256, Hann) != nil {
		t.Error("bad fftSize should give nil")
	}
}

func TestSTFTTracksChirpSteps(t *testing.T) {
	// Signal: 0.5 s at 500 Hz then 0.5 s at 1500 Hz. Dominant
	// frequency per frame must follow.
	const sampleRate = 44100.0
	half := int(0.5 * sampleRate)
	x := append(sine(500, sampleRate, half), sine(1500, sampleRate, half)...)
	sg := STFT(x, sampleRate, 4096, 2048, Hann)
	early, _ := sg.DominantFrequency(2, 100)
	late, _ := sg.DominantFrequency(sg.NumFrames()-3, 100)
	if math.Abs(early-500) > 30 {
		t.Errorf("early dominant = %g, want ~500", early)
	}
	if math.Abs(late-1500) > 30 {
		t.Errorf("late dominant = %g, want ~1500", late)
	}
}

func TestDominantFrequencyOutOfRange(t *testing.T) {
	sg := STFT(sine(440, 44100, 8192), 44100, 1024, 512, Hann)
	if hz, p := sg.DominantFrequency(-1, 0); hz != 0 || p != 0 {
		t.Error("negative index should give zeros")
	}
	if hz, p := sg.DominantFrequency(10000, 0); hz != 0 || p != 0 {
		t.Error("huge index should give zeros")
	}
}

func TestSpectrogramMelProjection(t *testing.T) {
	const sampleRate = 44100.0
	sg := STFT(sine(700, sampleRate, 44100), sampleRate, 2048, 1024, Hann)
	bank := NewMelFilterBank(32, sg.FFTSize, sampleRate, 50, 8000)
	mel := sg.Mel(bank)
	if len(mel) != sg.NumFrames() {
		t.Fatalf("mel rows = %d, want %d", len(mel), sg.NumFrames())
	}
	if len(mel[0]) != 32 {
		t.Fatalf("mel cols = %d, want 32", len(mel[0]))
	}
}

func TestDBConversions(t *testing.T) {
	if db := PowerDB(1); db != 0 {
		t.Errorf("PowerDB(1) = %g", db)
	}
	if db := PowerDB(0); db != -120 {
		t.Errorf("PowerDB(0) = %g, want floor", db)
	}
	if db := AmplitudeDB(10); math.Abs(db-20) > 1e-12 {
		t.Errorf("AmplitudeDB(10) = %g, want 20", db)
	}
	if db := AmplitudeDB(-1); db != -120 {
		t.Errorf("AmplitudeDB(-1) = %g, want floor", db)
	}
	if a := DBToAmplitude(20); math.Abs(a-10) > 1e-12 {
		t.Errorf("DBToAmplitude(20) = %g, want 10", a)
	}
	// Round trip.
	for _, db := range []float64{-60, -20, 0, 12, 40} {
		if got := AmplitudeDB(DBToAmplitude(db)); math.Abs(got-db) > 1e-9 {
			t.Errorf("dB round trip %g -> %g", db, got)
		}
	}
}
