package dsp

import (
	"fmt"
	"math"
	"sort"
)

// CDF is an empirical cumulative distribution function over observed
// samples, used to reproduce Figure 2b (the FFT processing-time CDF).
// The zero value is an empty CDF ready for Add.
type CDF struct {
	samples []float64
	sorted  bool
}

// Add records one observation.
func (c *CDF) Add(v float64) {
	c.samples = append(c.samples, v)
	c.sorted = false
}

// Len returns the number of observations.
func (c *CDF) Len() int { return len(c.samples) }

func (c *CDF) ensureSorted() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1) using linear
// interpolation between order statistics. It returns NaN when empty.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	c.ensureSorted()
	if q <= 0 {
		return c.samples[0]
	}
	if q >= 1 {
		return c.samples[len(c.samples)-1]
	}
	pos := q * float64(len(c.samples)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return c.samples[lo]
	}
	frac := pos - float64(lo)
	return c.samples[lo]*(1-frac) + c.samples[hi]*frac
}

// At returns the empirical CDF value P(X <= v).
func (c *CDF) At(v float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.ensureSorted()
	idx := sort.SearchFloat64s(c.samples, v)
	// Advance over equal values so At is P(X <= v), not P(X < v).
	for idx < len(c.samples) && c.samples[idx] <= v {
		idx++
	}
	return float64(idx) / float64(len(c.samples))
}

// Mean returns the sample mean, or NaN when empty.
func (c *CDF) Mean() float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range c.samples {
		sum += v
	}
	return sum / float64(len(c.samples))
}

// String summarises the distribution.
func (c *CDF) String() string {
	if len(c.samples) == 0 {
		return "CDF(empty)"
	}
	return fmt.Sprintf("CDF(n=%d p50=%.4g p90=%.4g p99=%.4g max=%.4g)",
		c.Len(), c.Quantile(0.5), c.Quantile(0.9), c.Quantile(0.99), c.Quantile(1))
}

// Series returns the sorted (value, cumulative probability) pairs of
// the empirical distribution, suitable for plotting.
func (c *CDF) Series() (values, probs []float64) {
	c.ensureSorted()
	values = make([]float64, len(c.samples))
	probs = make([]float64, len(c.samples))
	copy(values, c.samples)
	for i := range probs {
		probs[i] = float64(i+1) / float64(len(c.samples))
	}
	return values, probs
}

// RMS returns the root-mean-square of x (0 for an empty slice).
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range x {
		sum += v * v
	}
	return math.Sqrt(sum / float64(len(x)))
}

// MeanAbs returns the mean absolute value of x.
func MeanAbs(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range x {
		sum += math.Abs(v)
	}
	return sum / float64(len(x))
}
