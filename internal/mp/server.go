package mp

import (
	"errors"
	"io"
	"net"
	"sync"
)

// Handler consumes decoded MP messages arriving over a transport.
type Handler func(Message)

// Server accepts Music Protocol connections over a real transport
// (TCP in the examples) and dispatches decoded messages to a handler.
// It is the network-facing version of the Pi: the paper's testbed runs
// this exact protocol between the Zodiac FX and the Raspberry Pi.
type Server struct {
	// Handler receives every valid decoded message.
	Handler Handler

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	wg     sync.WaitGroup
}

// Serve accepts connections on ln until Close. It returns nil after a
// clean Close, or the accept error otherwise. Serve on an already
// closed server closes ln and returns nil immediately.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		// Close already ran (or is running): it cannot see this
		// listener, so close it here instead of accepting forever.
		s.mu.Unlock()
		ln.Close()
		return nil
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	dec := NewDecoder(conn)
	for {
		m, err := dec.Decode()
		if err != nil {
			if errors.Is(err, ErrBadMessage) {
				continue // skip the bad frame, stay in sync by size
			}
			return // EOF or transport error: drop the connection
		}
		if m.Validate() != nil {
			continue
		}
		if s.Handler != nil {
			s.Handler(m)
		}
	}
}

// Close stops accepting and waits for in-flight connections to
// finish.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Client sends MP messages over a transport connection.
type Client struct {
	conn net.Conn
	enc  *Encoder
}

// Dial connects to an MP server.
func Dial(network, addr string) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, enc: NewEncoder(conn)}, nil
}

// NewClient wraps an existing connection (e.g. one side of net.Pipe).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, enc: NewEncoder(conn)}
}

// Send transmits one message.
func (c *Client) Send(m Message) error { return c.enc.Encode(m) }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// ReadAll decodes every message from r until EOF, returning the valid
// ones. Useful for replaying captured MP streams.
func ReadAll(r io.Reader) ([]Message, error) {
	dec := NewDecoder(r)
	var out []Message
	for {
		m, err := dec.Decode()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, m)
	}
}
