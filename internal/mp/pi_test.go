package mp

import (
	"math"
	"testing"

	"mdn/internal/acoustic"
	"mdn/internal/dsp"
	"mdn/internal/netsim"
)

func TestPiPlaysIntoRoom(t *testing.T) {
	sim := netsim.NewSim()
	room := acoustic.NewRoom(44100, 1)
	sp := room.AddSpeaker("pi-1", acoustic.Position{X: 1})
	mic := room.AddMicrophone("ctl", acoustic.Position{}, 0)
	pi := NewPi(sim, sp, 0.002)

	sim.Schedule(1.0, func() {
		pi.Handle(Message{Frequency: 700, Duration: 0.1, Intensity: 70})
	})
	sim.Run()

	if pi.Played != 1 || pi.Rejected != 0 {
		t.Fatalf("played=%d rejected=%d", pi.Played, pi.Rejected)
	}
	// Tone starts at 1.002 plus ~2.9 ms propagation; listen over a
	// window containing it.
	buf := mic.Capture(1.0, 1.2)
	if g := dsp.Goertzel(buf.Samples, 700, 44100); g < 1 {
		t.Errorf("tone not heard: %g", g)
	}
	// Amplitude: 70 dB SPL => 10^((70-90)/20) = 0.1 at 1 m.
	peak := buf.Peak()
	if math.Abs(peak-0.1) > 0.02 {
		t.Errorf("peak = %g, want ~0.1 for 70 dB at 1 m", peak)
	}
	em := room.Emissions()
	if len(em) != 1 || math.Abs(em[0].At-1.002) > 1e-9 {
		t.Errorf("emission = %+v", em)
	}
}

func TestPiRejectsInvalid(t *testing.T) {
	sim := netsim.NewSim()
	room := acoustic.NewRoom(44100, 1)
	sp := room.AddSpeaker("pi-1", acoustic.Position{X: 1})
	pi := NewPi(sim, sp, 0)
	pi.Handle(Message{Frequency: -4, Duration: 0.1, Intensity: 70})
	if pi.Played != 0 || pi.Rejected != 1 {
		t.Errorf("played=%d rejected=%d", pi.Played, pi.Rejected)
	}
	if len(room.Emissions()) != 0 {
		t.Error("invalid message produced an emission")
	}
}

func TestSounderWirePath(t *testing.T) {
	sim := netsim.NewSim()
	room := acoustic.NewRoom(44100, 1)
	sp := room.AddSpeaker("pi-1", acoustic.Position{X: 1})
	pi := NewPi(sim, sp, 0.001)
	snd := NewSounder(pi)
	snd.Emit(Message{Frequency: 500, Duration: 0.05, Intensity: 60})
	snd.Emit(Message{Frequency: 600, Duration: 0.05, Intensity: 60})
	if snd.SentBytes != 2*WireSize {
		t.Errorf("sent bytes = %d", snd.SentBytes)
	}
	if snd.Pi().Played != 2 {
		t.Errorf("played = %d", pi.Played)
	}
	if len(room.Emissions()) != 2 {
		t.Errorf("emissions = %d", len(room.Emissions()))
	}
}
