package mp

import (
	"mdn/internal/netsim"
)

// The networked Music Protocol path: in the paper's testbed the
// Raspberry Pi hangs off a dedicated Ethernet port of the Zodiac FX
// (with OpenFlow disabled on that port), and the firmware writes MP
// frames straight to it. NetworkSounder and AttachPi reproduce that:
// MP messages ride the simulated link as packet payloads, paying the
// link's serialisation and propagation delay, and the Pi host decodes
// them on arrival.

// NetworkSounder emits MP messages as packets directly out a port —
// the firmware path that bypasses the flow table. InjectFaults arms
// deterministic wire faults on the hop: corrupted payloads travel the
// link and are rejected (and counted) by the Pi's decoder on arrival.
type NetworkSounder struct {
	// Flow stamps the emitted packets (the switch→Pi management
	// tuple).
	Flow netsim.FiveTuple

	port   *netsim.Port
	sim    *netsim.Sim
	id     uint64
	faults *netsim.FaultInjector

	// Sent counts emitted MP packets.
	Sent uint64
	// Dropped counts packets lost whole to injected faults.
	Dropped uint64
}

// NewNetworkSounder wires a sender to the switch's Pi-facing port.
func NewNetworkSounder(sim *netsim.Sim, port *netsim.Port, flow netsim.FiveTuple) *NetworkSounder {
	return &NetworkSounder{Flow: flow, port: port, sim: sim}
}

// InjectFaults arms wire-fault injection on the switch→Pi packets and
// returns the injector so callers can read its counters.
func (ns *NetworkSounder) InjectFaults(f netsim.Faults) *netsim.FaultInjector {
	ns.faults = netsim.NewFaultInjector(f)
	return ns.faults
}

// Emit sends one MP message down the wire. Frame size = MP wire size
// plus a nominal 42-byte Ethernet+IP+UDP header.
func (ns *NetworkSounder) Emit(m Message) {
	ns.id++
	ns.Sent++
	payload, delivered := ns.faults.Mangle(Marshal(m))
	if !delivered {
		ns.Dropped++
		return
	}
	pkt := &netsim.Packet{
		ID:        ns.id,
		Flow:      ns.Flow,
		Size:      WireSize + 42,
		CreatedAt: ns.sim.Now(),
		Payload:   payload,
	}
	if j := ns.faults.Jitter(); j > 0 {
		ns.sim.After(j, func() { ns.port.Send(pkt) })
		return
	}
	ns.port.Send(pkt)
}

// AttachPi makes a host decode arriving MP payloads into the Pi.
// Packets without a valid MP payload are counted and dropped — a
// defensive Pi daemon. It returns the host for chaining.
func AttachPi(h *netsim.Host, pi *Pi) *netsim.Host {
	h.OnReceive = func(pkt *netsim.Packet) {
		m, err := Unmarshal(pkt.Payload)
		if err != nil {
			pi.Rejected++
			return
		}
		pi.Handle(m)
	}
	return h
}
