package mp

import (
	"mdn/internal/acoustic"
	"mdn/internal/audio"
	"mdn/internal/netsim"
)

// Pi is the simulated Raspberry Pi of the paper's testbed: it sits on
// a dedicated switch port, receives Music Protocol messages, and
// drives the attached speaker. LinkDelay models the switch→Pi Ethernet
// hop plus the Pi's audio-stack latency.
type Pi struct {
	// Speaker is the attached driver in the acoustic room.
	Speaker *acoustic.Speaker
	// LinkDelay is seconds between the switch sending an MP message
	// and the speaker starting the tone.
	LinkDelay float64

	sim *netsim.Sim

	// Played counts accepted messages.
	Played uint64
	// Rejected counts messages that failed validation.
	Rejected uint64
}

// NewPi attaches a Pi to a speaker on the simulator clock.
func NewPi(sim *netsim.Sim, speaker *acoustic.Speaker, linkDelay float64) *Pi {
	return &Pi{Speaker: speaker, LinkDelay: linkDelay, sim: sim}
}

// Handle plays one decoded message: the tone starts LinkDelay after
// the current simulation time. Invalid messages are dropped and
// counted, like a defensive firmware would.
func (p *Pi) Handle(m Message) {
	if err := m.Validate(); err != nil {
		p.Rejected++
		return
	}
	p.Played++
	p.Speaker.Play(p.sim.Now()+p.LinkDelay, audio.Tone{
		Frequency: m.Frequency,
		Duration:  m.Duration,
		Amplitude: acoustic.SPLToAmplitude(m.Intensity),
	})
}

// Sounder is the switch-side MP sender: the firmware extension the
// paper added to the Zodiac FX. Emit marshals the message to the wire
// format, "transmits" it, and the Pi decodes and plays it — so every
// tone in every experiment exercises the byte-accurate protocol path.
type Sounder struct {
	pi *Pi
	// SentBytes counts wire bytes pushed to the Pi.
	SentBytes uint64
}

// NewSounder wires a switch-side sender to its Pi.
func NewSounder(pi *Pi) *Sounder { return &Sounder{pi: pi} }

// Emit sends one MP message to the Pi. Malformed messages are dropped
// at the Pi (see Pi.Rejected); wire corruption would surface as an
// unmarshal error, which cannot happen on this loss-free hop.
func (s *Sounder) Emit(m Message) {
	wire := Marshal(m)
	s.SentBytes += uint64(len(wire))
	decoded, err := Unmarshal(wire)
	if err != nil {
		// A marshal/unmarshal mismatch is a protocol bug, not an
		// operational condition.
		panic("mp: wire round-trip failed: " + err.Error())
	}
	s.pi.Handle(decoded)
}

// Pi returns the attached Pi.
func (s *Sounder) Pi() *Pi { return s.pi }
