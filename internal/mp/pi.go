package mp

import (
	"mdn/internal/acoustic"
	"mdn/internal/audio"
	"mdn/internal/netsim"
)

// Pi is the simulated Raspberry Pi of the paper's testbed: it sits on
// a dedicated switch port, receives Music Protocol messages, and
// drives the attached speaker. LinkDelay models the switch→Pi Ethernet
// hop plus the Pi's audio-stack latency.
type Pi struct {
	// Speaker is the attached driver in the acoustic room.
	Speaker *acoustic.Speaker
	// LinkDelay is seconds between the switch sending an MP message
	// and the speaker starting the tone.
	LinkDelay float64

	sim *netsim.Sim

	// Played counts accepted messages.
	Played uint64
	// Rejected counts messages that failed validation.
	Rejected uint64
}

// NewPi attaches a Pi to a speaker on the simulator clock.
func NewPi(sim *netsim.Sim, speaker *acoustic.Speaker, linkDelay float64) *Pi {
	return &Pi{Speaker: speaker, LinkDelay: linkDelay, sim: sim}
}

// Handle plays one decoded message: the tone starts LinkDelay after
// the current simulation time. Invalid messages are dropped and
// counted, like a defensive firmware would.
func (p *Pi) Handle(m Message) { p.HandleAfter(m, 0) }

// HandleAfter is Handle with extra seconds of delay before the tone
// starts — the hook fault injection uses for latency jitter.
func (p *Pi) HandleAfter(m Message, extra float64) {
	if err := m.Validate(); err != nil {
		p.Rejected++
		return
	}
	p.Played++
	p.Speaker.Play(p.sim.Now()+p.LinkDelay+extra, audio.Tone{
		Frequency: m.Frequency,
		Duration:  m.Duration,
		Amplitude: acoustic.SPLToAmplitude(m.Intensity),
	})
}

// Sounder is the switch-side MP sender: the firmware extension the
// paper added to the Zodiac FX. Emit marshals the message to the wire
// format, "transmits" it, and the Pi decodes and plays it — so every
// tone in every experiment exercises the byte-accurate protocol path.
// InjectFaults arms deterministic wire faults on the hop.
type Sounder struct {
	pi     *Pi
	faults *netsim.FaultInjector

	// Sent counts messages pushed into the hop (before any injected
	// fault), so loss rates are computable from the counters alone.
	Sent uint64
	// SentBytes counts wire bytes pushed to the Pi.
	SentBytes uint64
	// Dropped counts messages lost whole to injected faults.
	Dropped uint64
	// Corrupted counts messages the Pi-side decoder rejected after
	// injected corruption (or an unencodable field such as NaN, which
	// the strict decoder likewise refuses).
	Corrupted uint64
}

// NewSounder wires a switch-side sender to its Pi.
func NewSounder(pi *Pi) *Sounder { return &Sounder{pi: pi} }

// InjectFaults arms wire-fault injection on the switch→Pi hop and
// returns the injector so callers can read its counters.
func (s *Sounder) InjectFaults(f netsim.Faults) *netsim.FaultInjector {
	s.faults = netsim.NewFaultInjector(f)
	return s.faults
}

// Emit sends one MP message to the Pi. Malformed messages are dropped
// at the Pi (see Pi.Rejected); wire bytes the decoder rejects — from
// injected corruption or unencodable fields — are counted in
// Corrupted and dropped, never a panic.
func (s *Sounder) Emit(m Message) {
	wire := Marshal(m)
	s.Sent++
	s.SentBytes += uint64(len(wire))
	wire, delivered := s.faults.Mangle(wire)
	if !delivered {
		s.Dropped++
		return
	}
	decoded, err := Unmarshal(wire)
	if err != nil {
		s.Corrupted++
		return
	}
	s.pi.HandleAfter(decoded, s.faults.Jitter())
}

// Pi returns the attached Pi.
func (s *Sounder) Pi() *Pi { return s.pi }
