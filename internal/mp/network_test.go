package mp

import (
	"math"
	"testing"

	"mdn/internal/acoustic"
	"mdn/internal/dsp"
	"mdn/internal/netsim"
)

// networkedPiBed: switch --(100 Mbps, 1 ms)-- pi host with a speaker.
func networkedPiBed(t *testing.T) (*netsim.Sim, *netsim.Switch, *NetworkSounder, *Pi, *acoustic.Microphone) {
	t.Helper()
	sim := netsim.NewSim()
	room := acoustic.NewRoom(44100, 7)
	mic := room.AddMicrophone("ctl", acoustic.Position{}, 0)
	sw := netsim.NewSwitch(sim, "s1")
	piHost := netsim.NewHost(sim, "pi", netsim.MustAddr("192.168.0.2"))
	swPort, _ := netsim.Connect(sim, sw, 9, piHost, 1, 1e8, 0.001, 0)

	sp := room.AddSpeaker("pi-speaker", acoustic.Position{X: 1})
	pi := NewPi(sim, sp, 0.001)
	AttachPi(piHost, pi)
	flow := netsim.FiveTuple{
		Src: netsim.MustAddr("192.168.0.1"), Dst: piHost.Addr,
		SrcPort: 9999, DstPort: 5005, Proto: netsim.ProtoUDP,
	}
	ns := NewNetworkSounder(sim, swPort, flow)
	return sim, sw, ns, pi, mic
}

func TestNetworkedMPPlaysTone(t *testing.T) {
	sim, _, ns, pi, mic := networkedPiBed(t)
	sim.Schedule(0.5, func() {
		ns.Emit(Message{Frequency: 700, Duration: 0.1, Intensity: 65})
	})
	sim.RunUntil(1)
	if ns.Sent != 1 || pi.Played != 1 {
		t.Fatalf("sent=%d played=%d", ns.Sent, pi.Played)
	}
	buf := mic.Capture(0.5, 0.7)
	if g := dsp.Goertzel(buf.Samples, 700, 44100); g < 10 {
		t.Errorf("tone not heard: %g", g)
	}
}

func TestNetworkedMPPaysLinkDelay(t *testing.T) {
	sim, _, ns, pi, mic := networkedPiBed(t)
	sim.Schedule(0.5, func() {
		ns.Emit(Message{Frequency: 600, Duration: 0.05, Intensity: 60})
	})
	sim.Run()
	if pi.Played != 1 {
		t.Fatal("message not delivered")
	}
	// Emission start = send + serialisation (70 B @ 100 Mb ≈ 5.6 µs)
	// + 1 ms link latency + 1 ms pi latency, plus ~2.9 ms of
	// acoustic propagation from 1 m. Nothing audible before that.
	pre := mic.Capture(0.5, 0.5019)
	if pre.RMS() > 1e-12 {
		t.Errorf("tone audible before the wire+pi delay elapsed: rms %g", pre.RMS())
	}
	post := mic.Capture(0.506, 0.54)
	if post.RMS() < 1e-4 {
		t.Errorf("tone missing after delays: rms %g", post.RMS())
	}
}

func TestNetworkedMPDropsCorruptPayload(t *testing.T) {
	sim, _, ns, pi, _ := networkedPiBed(t)
	// Send raw garbage through the same port.
	sim.Schedule(0.2, func() {
		ns.port.Send(&netsim.Packet{ID: 99, Flow: ns.Flow, Size: 70, Payload: []byte("junk")})
	})
	sim.Schedule(0.4, func() {
		ns.Emit(Message{Frequency: 500, Duration: 0.05, Intensity: 60})
	})
	sim.Run()
	if pi.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", pi.Rejected)
	}
	if pi.Played != 1 {
		t.Errorf("played = %d, want 1", pi.Played)
	}
}

func TestNetworkedMPSurvivesQueueing(t *testing.T) {
	// A burst of MP messages serialises in order; all get played.
	sim, _, ns, pi, _ := networkedPiBed(t)
	sim.Schedule(0.1, func() {
		for i := 0; i < 10; i++ {
			ns.Emit(Message{Frequency: 500 + float64(i)*100, Duration: 0.03, Intensity: 55})
		}
	})
	sim.Run()
	if pi.Played != 10 {
		t.Errorf("played = %d, want 10", pi.Played)
	}
}

func TestNetworkedMPLostOnLinkDown(t *testing.T) {
	sim, _, ns, pi, _ := networkedPiBed(t)
	sim.Schedule(0.1, func() { ns.port.SetDown(true) })
	sim.Schedule(0.2, func() {
		ns.Emit(Message{Frequency: 500, Duration: 0.05, Intensity: 60})
	})
	sim.Run()
	if pi.Played != 0 {
		t.Error("message delivered over a dead link")
	}
	// This is the failure mode the paper's out-of-band argument
	// accepts: the switch→Pi hop is itself a (very short) wire.
	if math.Abs(float64(ns.Sent)-1) > 0 {
		t.Errorf("sent = %d", ns.Sent)
	}
}
