package mp

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzUnmarshal drives arbitrary bytes through the flat codec and the
// stream decoder: no panic, and anything that decodes must re-marshal
// to the identical bytes.
func FuzzUnmarshal(f *testing.F) {
	f.Add([]byte{})
	f.Add(Marshal(Message{Frequency: 440, Duration: 0.05, Intensity: 60}))
	f.Add(Marshal(Message{Frequency: 21999, Duration: 60, Intensity: 120}))
	bad := Marshal(Message{Frequency: 440, Duration: 1, Intensity: 1})
	bad[3] = 7 // reserved byte
	f.Add(bad)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err == nil {
			if re := Marshal(m); !bytes.Equal(re, data) {
				t.Fatalf("round trip diverged:\n in  %x\n out %x", data, re)
			}
		}
		// The stream decoder must consume the same bytes without
		// panicking, whatever the framing damage — skipping bad
		// frames exactly as Server.serveConn does.
		dec := NewDecoder(bytes.NewReader(data))
		for {
			_, err := dec.Decode()
			if errors.Is(err, ErrBadMessage) {
				continue
			}
			if err != nil {
				break
			}
		}
	})
}
