package mp

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"mdn/internal/acoustic"
	"mdn/internal/netsim"
)

// Regression: Close before (or racing) Serve used to miss the
// listener, leaving Serve accepting forever.
func TestServerCloseBeforeServe(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &Server{}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Serve after Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after prior Close")
	}
	// Serve must have closed the listener it could never serve.
	if _, err := ln.Accept(); err == nil {
		t.Error("listener still accepting after Serve returned")
	}
}

func TestServerCloseServeRace(t *testing.T) {
	for i := 0; i < 20; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		s := &Server{}
		done := make(chan error, 1)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Close()
		}()
		go func() { done <- s.Serve(ln) }()
		wg.Wait()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("iteration %d: Serve = %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("iteration %d: Serve hung after racing Close", i)
		}
		ln.Close()
	}
}

func TestUnmarshalStrictness(t *testing.T) {
	good := Marshal(Message{Frequency: 440, Duration: 0.1, Intensity: 60})
	long := append(append([]byte(nil), good...), 0x00)
	if _, err := Unmarshal(long); !errors.Is(err, ErrBadMessage) {
		t.Errorf("trailing byte accepted: %v", err)
	}
	reserved := append([]byte(nil), good...)
	reserved[3] = 1
	if _, err := Unmarshal(reserved); !errors.Is(err, ErrBadMessage) {
		t.Errorf("reserved byte accepted: %v", err)
	}
}

func TestRandomizedMessageRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		in := Message{
			Frequency: rng.Float64() * 22050,
			Duration:  rng.Float64() * 60,
			Intensity: rng.Float64() * 120,
		}
		out, err := Unmarshal(Marshal(in))
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if out != in {
			t.Fatalf("message %d: got %+v want %+v", i, out, in)
		}
	}
}

func faultBed(t *testing.T) (*netsim.Sim, *Pi) {
	t.Helper()
	sim := netsim.NewSim()
	room := acoustic.NewRoom(44100, 1)
	spk := room.AddSpeaker("pi", acoustic.Position{X: 1})
	return sim, NewPi(sim, spk, 0.001)
}

func TestSounderFaultInjection(t *testing.T) {
	sim, pi := faultBed(t)
	snd := NewSounder(pi)
	inj := snd.InjectFaults(netsim.Faults{DropProb: 0.25, FlipProb: 0.25, TruncProb: 0.1, JitterMax: 0.02, Seed: 3})
	const sends = 400
	for i := 0; i < sends; i++ {
		snd.Emit(Message{Frequency: 440 + float64(i), Duration: 0.05, Intensity: 60})
	}
	sim.Run()
	if snd.Dropped == 0 || snd.Corrupted == 0 {
		t.Errorf("faults not exercised: dropped=%d corrupted=%d", snd.Dropped, snd.Corrupted)
	}
	if pi.Played == 0 {
		t.Error("no message survived the faulty hop")
	}
	// A flipped bit can also surface as a Validate failure at the Pi
	// (counted in Rejected); every sent message lands in exactly one
	// bucket.
	if got := snd.Dropped + snd.Corrupted + pi.Played + pi.Rejected; got != sends {
		t.Errorf("accounting: %d dropped + %d corrupted + %d played + %d rejected = %d, want %d",
			snd.Dropped, snd.Corrupted, pi.Played, pi.Rejected, got, sends)
	}
	if inj.Dropped != snd.Dropped {
		t.Errorf("injector dropped %d, sounder %d", inj.Dropped, snd.Dropped)
	}
	// Same seed, same faults: deterministic replay.
	sim2, pi2 := faultBed(t)
	snd2 := NewSounder(pi2)
	snd2.InjectFaults(netsim.Faults{DropProb: 0.25, FlipProb: 0.25, TruncProb: 0.1, JitterMax: 0.02, Seed: 3})
	for i := 0; i < sends; i++ {
		snd2.Emit(Message{Frequency: 440 + float64(i), Duration: 0.05, Intensity: 60})
	}
	sim2.Run()
	if snd2.Dropped != snd.Dropped || snd2.Corrupted != snd.Corrupted || pi2.Played != pi.Played {
		t.Error("same seed diverged across runs")
	}
}

// Emit with unencodable fields must count-and-drop, never panic (it
// used to panic on the round-trip failure).
func TestSounderNaNDoesNotPanic(t *testing.T) {
	_, pi := faultBed(t)
	snd := NewSounder(pi)
	snd.Emit(Message{Frequency: nan(), Duration: 0.05, Intensity: 60})
	if snd.Corrupted != 1 {
		t.Errorf("Corrupted = %d, want 1", snd.Corrupted)
	}
	if pi.Played != 0 {
		t.Error("NaN message played")
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

func TestNetworkSounderFaultInjection(t *testing.T) {
	sim := netsim.NewSim()
	room := acoustic.NewRoom(44100, 1)
	spk := room.AddSpeaker("pi", acoustic.Position{X: 1})
	pi := NewPi(sim, spk, 0)

	sw := netsim.NewSwitch(sim, "s1")
	host := netsim.NewHost(sim, "pi-host", netsim.MustAddr("10.0.0.99"))
	swPort, _ := netsim.Connect(sim, sw, 1, host, 0, 100e6, 0.0001, 0)
	AttachPi(host, pi)

	ns := NewNetworkSounder(sim, swPort, netsim.FiveTuple{Proto: netsim.ProtoUDP})
	ns.InjectFaults(netsim.Faults{DropProb: 0.3, FlipProb: 0.4, JitterMax: 0.005, Seed: 9})
	const sends = 300
	for i := 0; i < sends; i++ {
		at := float64(i) * 0.001
		sim.Schedule(at, func() {
			ns.Emit(Message{Frequency: 600, Duration: 0.05, Intensity: 55})
		})
	}
	sim.RunUntil(5)
	if ns.Dropped == 0 {
		t.Error("drops not exercised")
	}
	if pi.Played == 0 {
		t.Error("no packet survived the faulty link")
	}
	if pi.Rejected == 0 {
		t.Error("corrupted payloads never reached the Pi decoder")
	}
	if got := ns.Dropped + pi.Played + pi.Rejected; got != sends {
		t.Errorf("accounting: %d dropped + %d played + %d rejected = %d, want %d",
			ns.Dropped, pi.Played, pi.Rejected, got, sends)
	}
}
