// Package mp implements the paper's Music Protocol (MP): the message
// a switch sends to its attached Raspberry Pi to have a sound played.
// The payload carries exactly what Section 3 describes — the frequency
// at which to play the sound, its duration, and its intensity
// (volume).
//
// The package provides the byte-accurate wire format, stream
// encoder/decoder (usable over net.Conn — the examples run MP over
// real TCP loopback), and the simulated Raspberry Pi that turns
// received messages into speaker emissions in the acoustic room.
package mp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Message is one Music Protocol request: play Frequency Hz for
// Duration seconds at Intensity dB SPL (referenced at 1 m, per the
// acoustic package calibration).
type Message struct {
	// Frequency in Hz.
	Frequency float64
	// Duration in seconds.
	Duration float64
	// Intensity in dB SPL at 1 m. The paper played tones of at least
	// 30 dB.
	Intensity float64
}

// Validate checks the message against hardware limits: audible
// positive frequency below Nyquist of common hardware (22.05 kHz),
// positive duration, sane intensity.
func (m Message) Validate() error {
	if m.Frequency <= 0 || m.Frequency > 22050 {
		return fmt.Errorf("mp: frequency %g Hz out of range (0, 22050]", m.Frequency)
	}
	if m.Duration <= 0 || m.Duration > 60 {
		return fmt.Errorf("mp: duration %g s out of range (0, 60]", m.Duration)
	}
	if m.Intensity < 0 || m.Intensity > 120 {
		return fmt.Errorf("mp: intensity %g dB out of range [0, 120]", m.Intensity)
	}
	return nil
}

// Wire format (28 bytes, big-endian):
//
//	magic     [2]byte  "MP"
//	version   uint8    1
//	reserved  uint8    0
//	frequency float64
//	duration  float64
//	intensity float64
const (
	// WireSize is the fixed encoded size of a Message.
	WireSize = 28
	version  = 1
)

// ErrBadMessage reports a malformed MP message.
var ErrBadMessage = errors.New("mp: malformed message")

// Marshal encodes the message to its fixed 28-byte wire form.
func Marshal(m Message) []byte {
	out := make([]byte, WireSize)
	out[0], out[1] = 'M', 'P'
	out[2] = version
	binary.BigEndian.PutUint64(out[4:12], math.Float64bits(m.Frequency))
	binary.BigEndian.PutUint64(out[12:20], math.Float64bits(m.Duration))
	binary.BigEndian.PutUint64(out[20:28], math.Float64bits(m.Intensity))
	return out
}

// Unmarshal decodes a wire-form message. It is strict: the buffer must
// be exactly one message, the reserved byte must be zero, and no field
// may be NaN — so corrupt bytes fail loudly instead of decoding into a
// message the sender never meant.
func Unmarshal(b []byte) (Message, error) {
	if len(b) != WireSize {
		return Message{}, fmt.Errorf("%w: %d bytes, need %d", ErrBadMessage, len(b), WireSize)
	}
	if b[0] != 'M' || b[1] != 'P' {
		return Message{}, fmt.Errorf("%w: bad magic", ErrBadMessage)
	}
	if b[2] != version {
		return Message{}, fmt.Errorf("%w: unsupported version %d", ErrBadMessage, b[2])
	}
	if b[3] != 0 {
		return Message{}, fmt.Errorf("%w: reserved byte %d", ErrBadMessage, b[3])
	}
	m := Message{
		Frequency: math.Float64frombits(binary.BigEndian.Uint64(b[4:12])),
		Duration:  math.Float64frombits(binary.BigEndian.Uint64(b[12:20])),
		Intensity: math.Float64frombits(binary.BigEndian.Uint64(b[20:28])),
	}
	if math.IsNaN(m.Frequency) || math.IsNaN(m.Duration) || math.IsNaN(m.Intensity) {
		return Message{}, fmt.Errorf("%w: NaN field", ErrBadMessage)
	}
	return m, nil
}

// Encoder writes MP messages to a stream.
type Encoder struct {
	w io.Writer
}

// NewEncoder returns an encoder writing to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// Encode validates and writes one message.
func (e *Encoder) Encode(m Message) error {
	if err := m.Validate(); err != nil {
		return err
	}
	_, err := e.w.Write(Marshal(m))
	return err
}

// Decoder reads MP messages from a stream.
type Decoder struct {
	r   io.Reader
	buf [WireSize]byte
}

// NewDecoder returns a decoder reading from r.
func NewDecoder(r io.Reader) *Decoder { return &Decoder{r: r} }

// Decode reads one message. It returns io.EOF at a clean stream end
// and io.ErrUnexpectedEOF on a mid-message cut.
func (d *Decoder) Decode() (Message, error) {
	if _, err := io.ReadFull(d.r, d.buf[:]); err != nil {
		return Message{}, err
	}
	return Unmarshal(d.buf[:])
}
