package mp

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
	"testing/quick"
)

func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(freq, dur, inten float64) bool {
		if math.IsNaN(freq) || math.IsNaN(dur) || math.IsNaN(inten) {
			return true
		}
		in := Message{Frequency: freq, Duration: dur, Intensity: inten}
		out, err := Unmarshal(Marshal(in))
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMarshalSize(t *testing.T) {
	if len(Marshal(Message{})) != WireSize {
		t.Errorf("size = %d", len(Marshal(Message{})))
	}
}

func TestUnmarshalRejects(t *testing.T) {
	good := Marshal(Message{Frequency: 440, Duration: 0.1, Intensity: 60})
	cases := map[string][]byte{
		"short":       good[:10],
		"bad magic":   append([]byte{'X', 'P'}, good[2:]...),
		"bad version": append([]byte{'M', 'P', 9}, good[3:]...),
	}
	for name, b := range cases {
		if _, err := Unmarshal(b); !errors.Is(err, ErrBadMessage) {
			t.Errorf("%s: err = %v", name, err)
		}
	}
	nan := Marshal(Message{Frequency: math.NaN(), Duration: 1, Intensity: 1})
	if _, err := Unmarshal(nan); !errors.Is(err, ErrBadMessage) {
		t.Errorf("NaN: err = %v", err)
	}
}

func TestValidate(t *testing.T) {
	valid := Message{Frequency: 700, Duration: 0.05, Intensity: 60}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid message rejected: %v", err)
	}
	bad := []Message{
		{Frequency: 0, Duration: 0.05, Intensity: 60},
		{Frequency: -5, Duration: 0.05, Intensity: 60},
		{Frequency: 30000, Duration: 0.05, Intensity: 60},
		{Frequency: 700, Duration: 0, Intensity: 60},
		{Frequency: 700, Duration: 61, Intensity: 60},
		{Frequency: 700, Duration: 0.05, Intensity: -1},
		{Frequency: 700, Duration: 0.05, Intensity: 130},
	}
	for i, m := range bad {
		if m.Validate() == nil {
			t.Errorf("bad message %d accepted: %+v", i, m)
		}
	}
}

func TestEncoderDecoderStream(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	msgs := []Message{
		{Frequency: 500, Duration: 0.05, Intensity: 60},
		{Frequency: 600, Duration: 0.03, Intensity: 50},
		{Frequency: 700, Duration: 0.10, Intensity: 70},
	}
	for _, m := range msgs {
		if err := enc.Encode(m); err != nil {
			t.Fatal(err)
		}
	}
	dec := NewDecoder(&buf)
	for i, want := range msgs {
		got, err := dec.Decode()
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if got != want {
			t.Errorf("msg %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := dec.Decode(); !errors.Is(err, io.EOF) {
		t.Errorf("stream end err = %v, want EOF", err)
	}
}

func TestEncoderRejectsInvalid(t *testing.T) {
	enc := NewEncoder(io.Discard)
	if err := enc.Encode(Message{Frequency: -1, Duration: 1, Intensity: 1}); err == nil {
		t.Error("invalid message should not encode")
	}
}

func TestDecoderMidMessageCut(t *testing.T) {
	wire := Marshal(Message{Frequency: 440, Duration: 0.1, Intensity: 60})
	dec := NewDecoder(bytes.NewReader(wire[:WireSize-3]))
	if _, err := dec.Decode(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestReadAll(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for i := 0; i < 5; i++ {
		if err := enc.Encode(Message{Frequency: 400 + float64(i)*100, Duration: 0.05, Intensity: 60}); err != nil {
			t.Fatal(err)
		}
	}
	msgs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 5 || msgs[4].Frequency != 800 {
		t.Errorf("msgs = %+v", msgs)
	}
}
