package mp

import (
	"net"
	"sync"
	"testing"
	"time"
)

func TestServerOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []Message
	srv := &Server{Handler: func(m Message) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	}}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	c, err := Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	want := []Message{
		{Frequency: 500, Duration: 0.05, Intensity: 60},
		{Frequency: 900, Duration: 0.03, Intensity: 45},
	}
	for _, m := range want {
		if err := c.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == len(want) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d of %d messages", n, len(want))
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("msg %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v after Close", err)
	}
}

func TestServerSkipsInvalidMessages(t *testing.T) {
	server, client := net.Pipe()
	var mu sync.Mutex
	var got []Message
	srv := &Server{Handler: func(m Message) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	}}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.serveConn(server)
	}()

	// Invalid (negative frequency) then valid: raw writes bypass the
	// encoder's validation.
	if _, err := client.Write(Marshal(Message{Frequency: -1, Duration: 1, Intensity: 1})); err != nil {
		t.Fatal(err)
	}
	valid := Message{Frequency: 440, Duration: 0.1, Intensity: 55}
	if _, err := client.Write(Marshal(valid)); err != nil {
		t.Fatal(err)
	}
	client.Close()
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0] != valid {
		t.Errorf("got = %+v, want only the valid message", got)
	}
}

func TestClientOverPipe(t *testing.T) {
	server, client := net.Pipe()
	c := NewClient(client)
	go func() {
		_ = c.Send(Message{Frequency: 440, Duration: 0.1, Intensity: 60})
		c.Close()
	}()
	msgs, err := ReadAll(server)
	if err != nil && err.Error() != "io: read/write on closed pipe" {
		t.Fatal(err)
	}
	if len(msgs) != 1 || msgs[0].Frequency != 440 {
		t.Errorf("msgs = %+v", msgs)
	}
}
