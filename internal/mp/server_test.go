package mp

import (
	"net"
	"sync"
	"testing"
	"time"
)

func TestServerOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// The handler delivers into a channel so the test blocks on real
	// arrival instead of polling the wall clock.
	recv := make(chan Message, 16)
	srv := &Server{Handler: func(m Message) { recv <- m }}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	c, err := Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	want := []Message{
		{Frequency: 500, Duration: 0.05, Intensity: 60},
		{Frequency: 900, Duration: 0.03, Intensity: 45},
	}
	for _, m := range want {
		if err := c.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	timeout := time.After(10 * time.Second)
	for i, w := range want {
		select {
		case m := <-recv:
			if m != w {
				t.Errorf("msg %d = %+v, want %+v", i, m, w)
			}
		case <-timeout:
			t.Fatalf("received %d of %d messages", i, len(want))
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v after Close", err)
	}
}

func TestServerSkipsInvalidMessages(t *testing.T) {
	server, client := net.Pipe()
	var mu sync.Mutex
	var got []Message
	srv := &Server{Handler: func(m Message) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	}}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.serveConn(server)
	}()

	// Invalid (negative frequency) then valid: raw writes bypass the
	// encoder's validation.
	if _, err := client.Write(Marshal(Message{Frequency: -1, Duration: 1, Intensity: 1})); err != nil {
		t.Fatal(err)
	}
	valid := Message{Frequency: 440, Duration: 0.1, Intensity: 55}
	if _, err := client.Write(Marshal(valid)); err != nil {
		t.Fatal(err)
	}
	client.Close()
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0] != valid {
		t.Errorf("got = %+v, want only the valid message", got)
	}
}

func TestClientOverPipe(t *testing.T) {
	server, client := net.Pipe()
	c := NewClient(client)
	go func() {
		_ = c.Send(Message{Frequency: 440, Duration: 0.1, Intensity: 60})
		c.Close()
	}()
	msgs, err := ReadAll(server)
	if err != nil && err.Error() != "io: read/write on closed pipe" {
		t.Fatal(err)
	}
	if len(msgs) != 1 || msgs[0].Frequency != 440 {
		t.Errorf("msgs = %+v", msgs)
	}
}
