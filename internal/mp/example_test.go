package mp_test

import (
	"bytes"
	"fmt"

	"mdn/internal/mp"
)

// Encode and decode a Music Protocol stream — the exact bytes a
// Zodiac FX would send its Raspberry Pi.
func Example() {
	var wire bytes.Buffer
	enc := mp.NewEncoder(&wire)
	enc.Encode(mp.Message{Frequency: 500, Duration: 0.065, Intensity: 60})
	enc.Encode(mp.Message{Frequency: 700, Duration: 0.065, Intensity: 60})
	fmt.Println("bytes on the wire:", wire.Len())

	dec := mp.NewDecoder(&wire)
	for {
		m, err := dec.Decode()
		if err != nil {
			break
		}
		fmt.Printf("play %.0f Hz for %.0f ms at %.0f dB\n",
			m.Frequency, m.Duration*1000, m.Intensity)
	}
	// Output:
	// bytes on the wire: 56
	// play 500 Hz for 65 ms at 60 dB
	// play 700 Hz for 65 ms at 60 dB
}
