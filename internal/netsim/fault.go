package netsim

import (
	"math/rand"
	"sync"
)

// Faults configures wire-level fault injection for a control or
// management path. Each probability is evaluated independently per
// message; zero values disable that fault. Experiments use these knobs
// to measure how the control plane degrades when the channel between
// controller and switch (or switch and Pi) is unreliable.
type Faults struct {
	// DropProb is the probability a whole message is lost in transit.
	DropProb float64
	// FlipProb is the probability one random bit of the message is
	// inverted.
	FlipProb float64
	// TruncProb is the probability the message is cut short at a
	// random byte boundary.
	TruncProb float64
	// JitterMax is the maximum extra one-way latency in seconds; each
	// message pays a uniform extra delay in [0, JitterMax).
	JitterMax float64
	// Seed seeds the deterministic fault stream, so faulty runs replay
	// exactly (0 is a valid seed).
	Seed int64
}

// FaultInjector applies a Faults configuration with a deterministic
// random stream. A nil injector is valid and injects nothing, so
// callers can apply it unconditionally.
type FaultInjector struct {
	cfg Faults

	mu  sync.Mutex
	rng *rand.Rand

	// Dropped counts messages lost whole.
	Dropped uint64
	// Flipped counts messages that had a bit inverted.
	Flipped uint64
	// Truncated counts messages cut short.
	Truncated uint64
}

// NewFaultInjector builds an injector for the configuration.
func NewFaultInjector(cfg Faults) *FaultInjector {
	return &FaultInjector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Mangle applies drop/flip/truncation to one wire message. It returns
// the surviving bytes and true, or nil and false when the message is
// dropped whole. The input is never modified; a corrupted result is a
// copy.
func (f *FaultInjector) Mangle(wire []byte) ([]byte, bool) {
	if f == nil {
		return wire, true
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cfg.DropProb > 0 && f.rng.Float64() < f.cfg.DropProb {
		f.Dropped++
		return nil, false
	}
	if f.cfg.TruncProb > 0 && len(wire) > 0 && f.rng.Float64() < f.cfg.TruncProb {
		f.Truncated++
		wire = append([]byte(nil), wire[:f.rng.Intn(len(wire))]...)
	}
	if f.cfg.FlipProb > 0 && len(wire) > 0 && f.rng.Float64() < f.cfg.FlipProb {
		f.Flipped++
		bit := f.rng.Intn(len(wire) * 8)
		cp := append([]byte(nil), wire...)
		cp[bit/8] ^= 1 << (bit % 8)
		wire = cp
	}
	return wire, true
}

// Jitter returns the extra one-way latency for one message, uniform in
// [0, JitterMax).
func (f *FaultInjector) Jitter() float64 {
	if f == nil || f.cfg.JitterMax <= 0 {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Float64() * f.cfg.JitterMax
}
