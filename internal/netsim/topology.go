package netsim

import "fmt"

// LinkSpec bundles the parameters of a link.
type LinkSpec struct {
	// RateBps is the line rate in bits/second.
	RateBps float64
	// Latency is the propagation delay in seconds.
	Latency float64
	// QueueCap bounds each direction's output queue in packets
	// (0 = unbounded).
	QueueCap int
}

// Line is a chain topology h1 — s1 — s2 — … — sn — h2 with forwarding
// rules pre-installed in both directions.
type Line struct {
	Sim      *Sim
	H1, H2   *Host
	Switches []*Switch
}

// NewLine builds an n-switch chain. Hosts get 10.0.0.1 and 10.0.0.2.
// Port numbering on each switch: 1 faces h1, 2 faces h2.
func NewLine(sim *Sim, n int, link LinkSpec) *Line {
	if n < 1 {
		panic("netsim: NewLine requires at least one switch")
	}
	l := &Line{
		Sim: sim,
		H1:  NewHost(sim, "h1", MustAddr("10.0.0.1")),
		H2:  NewHost(sim, "h2", MustAddr("10.0.0.2")),
	}
	for i := 0; i < n; i++ {
		l.Switches = append(l.Switches, NewSwitch(sim, fmt.Sprintf("s%d", i+1)))
	}
	Connect(sim, l.H1, 1, l.Switches[0], 1, link.RateBps, link.Latency, link.QueueCap)
	for i := 0; i+1 < n; i++ {
		Connect(sim, l.Switches[i], 2, l.Switches[i+1], 1, link.RateBps, link.Latency, link.QueueCap)
	}
	Connect(sim, l.Switches[n-1], 2, l.H2, 1, link.RateBps, link.Latency, link.QueueCap)
	for _, sw := range l.Switches {
		sw.InstallRule(Rule{Priority: 1, Match: Match{Dst: l.H2.Addr}, Action: Output(2)})
		sw.InstallRule(Rule{Priority: 1, Match: Match{Dst: l.H1.Addr}, Action: Output(1)})
	}
	return l
}

// Rhombus is the paper's load-balancing topology (Section 6): four
// switches in a diamond with the two hosts on opposite vertices.
//
//	        s2 (upper path)
//	       /  \
//	h1 — s1    s4 — h2
//	       \  /
//	        s3 (lower path)
//
// Port numbers: s1: 1=h1, 2=s2, 3=s3. s2: 1=s1, 2=s4. s3: 1=s1,
// 2=s4. s4: 1=s2, 2=s3, 3=h2.
type Rhombus struct {
	Sim            *Sim
	H1, H2         *Host
	S1, S2, S3, S4 *Switch
}

// NewRhombus builds the diamond with identical links everywhere and
// initial routing pinned to the upper path (s1→s2→s4), matching the
// paper's "initially using a single path" setup.
func NewRhombus(sim *Sim, link LinkSpec) *Rhombus {
	return NewRhombusLinks(sim, link, link)
}

// NewRhombusLinks builds the diamond with distinct host-access and
// switch-core link specs. Congestion experiments want fast host links
// so queues build inside the network (at s1's core-facing ports)
// rather than at the source host's own egress.
func NewRhombusLinks(sim *Sim, hostLink, coreLink LinkSpec) *Rhombus {
	r := &Rhombus{
		Sim: sim,
		H1:  NewHost(sim, "h1", MustAddr("10.0.0.1")),
		H2:  NewHost(sim, "h2", MustAddr("10.0.0.2")),
		S1:  NewSwitch(sim, "s1"),
		S2:  NewSwitch(sim, "s2"),
		S3:  NewSwitch(sim, "s3"),
		S4:  NewSwitch(sim, "s4"),
	}
	Connect(sim, r.H1, 1, r.S1, 1, hostLink.RateBps, hostLink.Latency, hostLink.QueueCap)
	Connect(sim, r.S1, 2, r.S2, 1, coreLink.RateBps, coreLink.Latency, coreLink.QueueCap)
	Connect(sim, r.S1, 3, r.S3, 1, coreLink.RateBps, coreLink.Latency, coreLink.QueueCap)
	Connect(sim, r.S2, 2, r.S4, 1, coreLink.RateBps, coreLink.Latency, coreLink.QueueCap)
	Connect(sim, r.S3, 2, r.S4, 2, coreLink.RateBps, coreLink.Latency, coreLink.QueueCap)
	Connect(sim, r.S4, 3, r.H2, 1, hostLink.RateBps, hostLink.Latency, hostLink.QueueCap)

	// Forward direction, single (upper) path initially.
	r.S1.InstallRule(Rule{Priority: 1, Match: Match{Dst: r.H2.Addr}, Action: Output(2)})
	r.S2.InstallRule(Rule{Priority: 1, Match: Match{Dst: r.H2.Addr}, Action: Output(2)})
	r.S3.InstallRule(Rule{Priority: 1, Match: Match{Dst: r.H2.Addr}, Action: Output(2)})
	r.S4.InstallRule(Rule{Priority: 1, Match: Match{Dst: r.H2.Addr}, Action: Output(3)})
	// Reverse direction.
	r.S4.InstallRule(Rule{Priority: 1, Match: Match{Dst: r.H1.Addr}, Action: Output(1)})
	r.S2.InstallRule(Rule{Priority: 1, Match: Match{Dst: r.H1.Addr}, Action: Output(1)})
	r.S3.InstallRule(Rule{Priority: 1, Match: Match{Dst: r.H1.Addr}, Action: Output(1)})
	r.S1.InstallRule(Rule{Priority: 1, Match: Match{Dst: r.H1.Addr}, Action: Output(1)})
	return r
}

// BalanceUpper installs the load-balancing Flow-MOD on s1: traffic to
// h2 round-robins across the upper and lower paths. This is exactly
// the rule the MDN controller installs when it hears the congestion
// tone (Figure 5a).
func (r *Rhombus) BalanceUpper() *Rule {
	return r.S1.InstallRule(Rule{
		Priority: 10,
		Match:    Match{Dst: r.H2.Addr},
		Action:   Split(2, 3),
	})
}
