package netsim

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"net/netip"
)

// Protocol numbers (IANA) used by the simulator.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// FiveTuple identifies a flow, exactly as the paper's heavy-hitter
// application hashes it: source/destination IP, source/destination
// port, and protocol.
type FiveTuple struct {
	Src, Dst         netip.Addr
	SrcPort, DstPort uint16
	Proto            uint8
}

// String renders the tuple in the usual proto src:sport>dst:dport form.
func (f FiveTuple) String() string {
	return fmt.Sprintf("%d %s:%d>%s:%d", f.Proto, f.Src, f.SrcPort, f.Dst, f.DstPort)
}

// Reverse returns the tuple of the reply direction.
func (f FiveTuple) Reverse() FiveTuple {
	return FiveTuple{Src: f.Dst, Dst: f.Src, SrcPort: f.DstPort, DstPort: f.SrcPort, Proto: f.Proto}
}

// Hash returns a stable 64-bit FNV-1a hash of the tuple. The MDN
// heavy-hitter application maps this hash onto its frequency set.
func (f FiveTuple) Hash() uint64 {
	h := fnv.New64a()
	b := f.Src.As4()
	h.Write(b[:])
	b = f.Dst.As4()
	h.Write(b[:])
	var p [5]byte
	binary.BigEndian.PutUint16(p[0:2], f.SrcPort)
	binary.BigEndian.PutUint16(p[2:4], f.DstPort)
	p[4] = f.Proto
	h.Write(p[:])
	return h.Sum64()
}

// DefaultPacketSize is the MTU-sized packet used by generators, in
// bytes.
const DefaultPacketSize = 1500

// Packet is one simulated datagram.
type Packet struct {
	// ID is unique per simulation, assigned by the generator.
	ID uint64
	// Flow is the packet's five-tuple.
	Flow FiveTuple
	// Size in bytes (headers included).
	Size int
	// CreatedAt is the send time at the origin host.
	CreatedAt float64
	// Hops counts switch traversals, to catch forwarding loops.
	Hops int
	// Payload carries application bytes when a protocol rides the
	// simulated network (e.g. Music Protocol frames to a Pi). Size
	// still governs timing; Payload is opaque to the forwarding
	// plane.
	Payload []byte

	// pooled marks packets born from the simulator's free list
	// (EnablePacketPool); only those return to it on release.
	// Hand-built packets stay false and are garbage collected as
	// usual.
	pooled bool
}

// MustAddr parses a dotted-quad address, panicking on error; for
// topology construction in tests and experiments.
func MustAddr(s string) netip.Addr {
	return netip.MustParseAddr(s)
}

// MaxHops is the forwarding-loop guard: packets exceeding it are
// dropped and counted by the switch that saw them.
const MaxHops = 64
