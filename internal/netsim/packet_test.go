package netsim

import (
	"strings"
	"testing"
	"testing/quick"
)

func tuple(sp, dp uint16) FiveTuple {
	return FiveTuple{
		Src: MustAddr("10.0.0.1"), Dst: MustAddr("10.0.0.2"),
		SrcPort: sp, DstPort: dp, Proto: ProtoTCP,
	}
}

func TestFiveTupleHashStable(t *testing.T) {
	a := tuple(1000, 80)
	if a.Hash() != a.Hash() {
		t.Error("hash not stable")
	}
	b := tuple(1000, 81)
	if a.Hash() == b.Hash() {
		t.Error("distinct tuples should (almost surely) hash differently")
	}
}

func TestFiveTupleHashSpreadProperty(t *testing.T) {
	// Property: across many port pairs, hashes rarely collide.
	f := func(seed uint16) bool {
		seen := map[uint64]bool{}
		collisions := 0
		for i := 0; i < 100; i++ {
			h := tuple(seed+uint16(i), 80).Hash()
			if seen[h] {
				collisions++
			}
			seen[h] = true
		}
		return collisions == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFiveTupleReverse(t *testing.T) {
	a := tuple(1000, 80)
	r := a.Reverse()
	if r.Src != a.Dst || r.Dst != a.Src || r.SrcPort != 80 || r.DstPort != 1000 {
		t.Errorf("reverse = %+v", r)
	}
	if r.Reverse() != a {
		t.Error("double reverse should be identity")
	}
}

func TestFiveTupleString(t *testing.T) {
	s := tuple(1000, 80).String()
	if !strings.Contains(s, "10.0.0.1:1000") || !strings.Contains(s, "10.0.0.2:80") {
		t.Errorf("String() = %q", s)
	}
}

func TestMustAddrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustAddr("not an address")
}
