package netsim

import "testing"

func TestRuleHardTimeout(t *testing.T) {
	sim, h1, s, h2, _ := star(t, false)
	rule := s.InstallRule(Rule{
		Priority: 1, Match: Match{Dst: h2.Addr}, Action: Output(2),
		HardTimeout: 2,
	})
	// Traffic before and after the timeout.
	StartCBR(sim, h1, tuple(1, 80), 10, 100, 0, 4)
	sim.RunUntil(5)
	if !rule.Evicted() {
		t.Fatal("hard timeout did not evict")
	}
	if len(s.Rules()) != 0 {
		t.Error("rule still in table")
	}
	// ~20 packets before eviction delivered, the rest dropped.
	if h2.RxPackets < 18 || h2.RxPackets > 22 {
		t.Errorf("delivered = %d, want ~20 (traffic does not extend a hard timeout)", h2.RxPackets)
	}
}

func TestRuleIdleTimeoutRefreshedByTraffic(t *testing.T) {
	sim, h1, s, h2, _ := star(t, false)
	rule := s.InstallRule(Rule{
		Priority: 1, Match: Match{Dst: h2.Addr}, Action: Output(2),
		IdleTimeout: 1,
	})
	// Steady traffic at 2 pps keeps the rule alive well past 1 s.
	StartCBR(sim, h1, tuple(1, 80), 2, 100, 0, 5)
	sim.RunUntil(5.5)
	if rule.Evicted() {
		t.Fatal("active rule evicted despite traffic")
	}
	// After the flow stops, the rule idles out.
	sim.RunUntil(8)
	if !rule.Evicted() {
		t.Fatal("idle rule not evicted")
	}
	if h2.RxPackets != 10 {
		t.Errorf("delivered = %d, want all 10", h2.RxPackets)
	}
}

func TestRuleIdleTimeoutWithoutTraffic(t *testing.T) {
	sim, _, s, h2, _ := star(t, false)
	rule := s.InstallRule(Rule{
		Priority: 1, Match: Match{Dst: h2.Addr}, Action: Output(2),
		IdleTimeout: 0.5,
	})
	sim.RunUntil(1)
	if !rule.Evicted() || len(s.Rules()) != 0 {
		t.Error("untouched rule should idle out at 0.5 s")
	}
}

func TestRuleNoTimeoutsPersist(t *testing.T) {
	sim, _, s, h2, _ := star(t, false)
	rule := s.InstallRule(Rule{Priority: 1, Match: Match{Dst: h2.Addr}, Action: Output(2)})
	sim.RunUntil(100)
	if rule.Evicted() || len(s.Rules()) != 1 {
		t.Error("rule without timeouts must persist")
	}
	if sim.Pending() != 0 {
		t.Errorf("timeout machinery leaked %d events", sim.Pending())
	}
}

func TestRuleBothTimeoutsHardWins(t *testing.T) {
	sim, h1, s, h2, _ := star(t, false)
	rule := s.InstallRule(Rule{
		Priority: 1, Match: Match{Dst: h2.Addr}, Action: Output(2),
		IdleTimeout: 1, HardTimeout: 3,
	})
	// Continuous traffic defeats the idle timeout, but the hard
	// timeout still fires at t=3.
	StartCBR(sim, h1, tuple(1, 80), 5, 100, 0, 10)
	sim.RunUntil(3.5)
	if !rule.Evicted() {
		t.Error("hard timeout should win over refreshed idle timeout")
	}
}

func TestManualRemoveBeforeTimeoutIsSafe(t *testing.T) {
	sim, _, s, h2, _ := star(t, false)
	s.InstallRule(Rule{
		Priority: 1, Match: Match{Dst: h2.Addr}, Action: Output(2),
		HardTimeout: 2,
	})
	s.RemoveRules(func(*Rule) bool { return true })
	sim.RunUntil(5) // the armed eviction event must not panic or re-add
	if len(s.Rules()) != 0 {
		t.Error("table should stay empty")
	}
}
