package netsim

import "testing"

func TestRuleHardTimeout(t *testing.T) {
	sim, h1, s, h2, _ := star(t, false)
	rule := s.InstallRule(Rule{
		Priority: 1, Match: Match{Dst: h2.Addr}, Action: Output(2),
		HardTimeout: 2,
	})
	// Traffic before and after the timeout.
	StartCBR(sim, h1, tuple(1, 80), 10, 100, 0, 4)
	sim.RunUntil(5)
	if !rule.Evicted() {
		t.Fatal("hard timeout did not evict")
	}
	if len(s.Rules()) != 0 {
		t.Error("rule still in table")
	}
	// ~20 packets before eviction delivered, the rest dropped.
	if h2.RxPackets < 18 || h2.RxPackets > 22 {
		t.Errorf("delivered = %d, want ~20 (traffic does not extend a hard timeout)", h2.RxPackets)
	}
}

func TestRuleIdleTimeoutRefreshedByTraffic(t *testing.T) {
	sim, h1, s, h2, _ := star(t, false)
	rule := s.InstallRule(Rule{
		Priority: 1, Match: Match{Dst: h2.Addr}, Action: Output(2),
		IdleTimeout: 1,
	})
	// Steady traffic at 2 pps keeps the rule alive well past 1 s.
	StartCBR(sim, h1, tuple(1, 80), 2, 100, 0, 5)
	sim.RunUntil(5.5)
	if rule.Evicted() {
		t.Fatal("active rule evicted despite traffic")
	}
	// After the flow stops, the rule idles out.
	sim.RunUntil(8)
	if !rule.Evicted() {
		t.Fatal("idle rule not evicted")
	}
	if h2.RxPackets != 10 {
		t.Errorf("delivered = %d, want all 10", h2.RxPackets)
	}
}

func TestRuleIdleTimeoutWithoutTraffic(t *testing.T) {
	sim, _, s, h2, _ := star(t, false)
	rule := s.InstallRule(Rule{
		Priority: 1, Match: Match{Dst: h2.Addr}, Action: Output(2),
		IdleTimeout: 0.5,
	})
	sim.RunUntil(1)
	if !rule.Evicted() || len(s.Rules()) != 0 {
		t.Error("untouched rule should idle out at 0.5 s")
	}
}

func TestRuleNoTimeoutsPersist(t *testing.T) {
	sim, _, s, h2, _ := star(t, false)
	rule := s.InstallRule(Rule{Priority: 1, Match: Match{Dst: h2.Addr}, Action: Output(2)})
	sim.RunUntil(100)
	if rule.Evicted() || len(s.Rules()) != 1 {
		t.Error("rule without timeouts must persist")
	}
	if sim.Pending() != 0 {
		t.Errorf("timeout machinery leaked %d events", sim.Pending())
	}
}

func TestRuleBothTimeoutsHardWins(t *testing.T) {
	sim, h1, s, h2, _ := star(t, false)
	rule := s.InstallRule(Rule{
		Priority: 1, Match: Match{Dst: h2.Addr}, Action: Output(2),
		IdleTimeout: 1, HardTimeout: 3,
	})
	// Continuous traffic defeats the idle timeout, but the hard
	// timeout still fires at t=3.
	StartCBR(sim, h1, tuple(1, 80), 5, 100, 0, 10)
	sim.RunUntil(3.5)
	if !rule.Evicted() {
		t.Error("hard timeout should win over refreshed idle timeout")
	}
}

func TestManualRemoveBeforeTimeoutIsSafe(t *testing.T) {
	sim, _, s, h2, _ := star(t, false)
	s.InstallRule(Rule{
		Priority: 1, Match: Match{Dst: h2.Addr}, Action: Output(2),
		HardTimeout: 2,
	})
	s.RemoveRules(func(*Rule) bool { return true })
	sim.RunUntil(5) // the armed eviction event must not panic or re-add
	if len(s.Rules()) != 0 {
		t.Error("table should stay empty")
	}
}

// Regression: RemoveRules (the FlowDelete path) used to leave removed
// idle-timeout rules un-evicted, so each scheduleEviction closure
// re-armed forever and the event heap grew without bound in long runs.
func TestRemoveRulesStopsEvictionTimerChain(t *testing.T) {
	sim, _, s, h2, _ := star(t, false)
	r := s.InstallRule(Rule{
		Priority: 1, Match: Match{Dst: h2.Addr}, Action: Output(2),
		IdleTimeout: 1,
	})
	s.RemoveRules(func(x *Rule) bool { return x == r })
	if !r.Evicted() {
		t.Fatal("removed rule not marked evicted")
	}
	// The one armed check fires at t=1 and must terminate the chain:
	// no events may remain, however far the clock advances.
	sim.RunUntil(1000)
	if n := sim.Pending(); n != 0 {
		t.Errorf("%d eviction events still pending after removal", n)
	}
}

func TestFaultInjectorDeterministicAndBounded(t *testing.T) {
	mangle := func(seed int64) ([]int, uint64, uint64, uint64) {
		inj := NewFaultInjector(Faults{DropProb: 0.2, FlipProb: 0.4, TruncProb: 0.3, Seed: seed})
		var lens []int
		for i := 0; i < 200; i++ {
			msg := make([]byte, 40)
			out, ok := inj.Mangle(msg)
			if !ok {
				lens = append(lens, -1)
				continue
			}
			if len(out) > len(msg) {
				t.Fatalf("mangle grew the message: %d > %d", len(out), len(msg))
			}
			for _, b := range msg {
				if b != 0 {
					t.Fatal("mangle modified the caller's buffer")
				}
			}
			lens = append(lens, len(out))
		}
		return lens, inj.Dropped, inj.Flipped, inj.Truncated
	}
	l1, d1, f1, t1 := mangle(5)
	l2, d2, f2, t2 := mangle(5)
	if d1 != d2 || f1 != f2 || t1 != t2 {
		t.Errorf("same seed diverged: %d/%d/%d vs %d/%d/%d", d1, f1, t1, d2, f2, t2)
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("mangle %d: len %d vs %d", i, l1[i], l2[i])
		}
	}
	if d1 == 0 || f1 == 0 || t1 == 0 {
		t.Errorf("faults not exercised: %d/%d/%d", d1, f1, t1)
	}
}

func TestNilFaultInjectorPassesThrough(t *testing.T) {
	var inj *FaultInjector
	msg := []byte{1, 2, 3}
	out, ok := inj.Mangle(msg)
	if !ok || &out[0] != &msg[0] {
		t.Error("nil injector must pass the message through untouched")
	}
	if inj.Jitter() != 0 {
		t.Error("nil injector must add no jitter")
	}
}
