package netsim

import "testing"

func TestQueueDropTail(t *testing.T) {
	q := &Queue{Capacity: 2}
	p1, p2, p3 := &Packet{ID: 1}, &Packet{ID: 2}, &Packet{ID: 3}
	if !q.Push(p1) || !q.Push(p2) {
		t.Fatal("pushes within capacity must succeed")
	}
	if q.Push(p3) {
		t.Error("push beyond capacity must fail")
	}
	if q.Drops() != 1 || q.Enqueued() != 2 || q.HighWater() != 2 {
		t.Errorf("drops=%d enq=%d hw=%d", q.Drops(), q.Enqueued(), q.HighWater())
	}
	if got := q.Pop(); got != p1 {
		t.Error("FIFO order violated")
	}
	if got := q.Pop(); got != p2 {
		t.Error("FIFO order violated")
	}
	if q.Pop() != nil {
		t.Error("empty pop should be nil")
	}
}

func TestQueueUnbounded(t *testing.T) {
	q := &Queue{}
	for i := 0; i < 1000; i++ {
		if !q.Push(&Packet{}) {
			t.Fatal("unbounded queue rejected a push")
		}
	}
	if q.Len() != 1000 {
		t.Errorf("len = %d", q.Len())
	}
}

func TestLinkDeliveryTiming(t *testing.T) {
	sim := NewSim()
	h1 := NewHost(sim, "h1", MustAddr("10.0.0.1"))
	h2 := NewHost(sim, "h2", MustAddr("10.0.0.2"))
	// 1 Mbps, 10 ms latency: a 1500-byte packet serialises in 12 ms,
	// arriving at 22 ms.
	Connect(sim, h1, 1, h2, 1, 1e6, 0.010, 0)
	var arrival float64
	h2.OnReceive = func(*Packet) { arrival = sim.Now() }
	h1.Send(tuple(1, 2), 1500)
	sim.Run()
	if !AlmostEqual(arrival, 0.022, 1e-9) {
		t.Errorf("arrival = %g, want 0.022", arrival)
	}
	if h2.RxPackets != 1 || h2.RxBytes != 1500 {
		t.Errorf("rx = %d pkts %d bytes", h2.RxPackets, h2.RxBytes)
	}
}

func TestLinkSerialisesBackToBack(t *testing.T) {
	sim := NewSim()
	h1 := NewHost(sim, "h1", MustAddr("10.0.0.1"))
	h2 := NewHost(sim, "h2", MustAddr("10.0.0.2"))
	Connect(sim, h1, 1, h2, 1, 1e6, 0, 0)
	var arrivals []float64
	h2.OnReceive = func(*Packet) { arrivals = append(arrivals, sim.Now()) }
	// Two packets sent at t=0 must arrive 12 ms apart (serialisation).
	h1.Send(tuple(1, 2), 1500)
	h1.Send(tuple(1, 2), 1500)
	sim.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if !AlmostEqual(arrivals[1]-arrivals[0], 0.012, 1e-9) {
		t.Errorf("spacing = %g, want 0.012", arrivals[1]-arrivals[0])
	}
}

func TestLinkQueueOverflowDrops(t *testing.T) {
	sim := NewSim()
	h1 := NewHost(sim, "h1", MustAddr("10.0.0.1"))
	h2 := NewHost(sim, "h2", MustAddr("10.0.0.2"))
	pa, _ := Connect(sim, h1, 1, h2, 1, 1e6, 0, 5)
	for i := 0; i < 20; i++ {
		h1.Send(tuple(1, 2), 1500)
	}
	sim.Run()
	// One in flight immediately, 5 queued, rest dropped.
	if h2.RxPackets != 6 {
		t.Errorf("delivered = %d, want 6", h2.RxPackets)
	}
	if pa.Out.Drops() != 14 {
		t.Errorf("drops = %d, want 14", pa.Out.Drops())
	}
}

func TestUnconnectedHostSendIsNoop(t *testing.T) {
	sim := NewSim()
	h := NewHost(sim, "h", MustAddr("10.0.0.1"))
	h.Send(tuple(1, 2), 100) // must not panic
	sim.Run()
	if h.TxPackets != 0 {
		t.Errorf("tx = %d, want 0 for unconnected host", h.TxPackets)
	}
}

func TestHostDoubleConnectPanics(t *testing.T) {
	sim := NewSim()
	h := NewHost(sim, "h", MustAddr("10.0.0.1"))
	h2 := NewHost(sim, "h2", MustAddr("10.0.0.2"))
	h3 := NewHost(sim, "h3", MustAddr("10.0.0.3"))
	Connect(sim, h, 1, h2, 1, 1e6, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Connect(sim, h, 2, h3, 1, 1e6, 0, 0)
}

func TestHostGoodputSampling(t *testing.T) {
	sim := NewSim()
	h1 := NewHost(sim, "h1", MustAddr("10.0.0.1"))
	h2 := NewHost(sim, "h2", MustAddr("10.0.0.2"))
	Connect(sim, h1, 1, h2, 1, 1e9, 0, 0)
	h2.SampleGoodput(0, 0.1)
	StartCBR(sim, h1, tuple(1, 2), 100, 1000, 0, 1)
	sim.RunUntil(1)
	series := h2.RxSeries()
	if len(series) < 10 {
		t.Fatalf("series too short: %d", len(series))
	}
	last := series[len(series)-1]
	if last.Value < 90000 {
		t.Errorf("final cumulative bytes = %g, want ~100000", last.Value)
	}
	// Monotone nondecreasing.
	for i := 1; i < len(series); i++ {
		if series[i].Value < series[i-1].Value {
			t.Fatal("cumulative series decreased")
		}
	}
}

func TestHostLatencyTracking(t *testing.T) {
	sim := NewSim()
	h1 := NewHost(sim, "h1", MustAddr("10.0.0.1"))
	h2 := NewHost(sim, "h2", MustAddr("10.0.0.2"))
	Connect(sim, h1, 1, h2, 1, 1e6, 0.010, 0) // 12 ms tx + 10 ms prop
	h2.TrackLatency()
	h1.Send(tuple(1, 2), 1500)
	h1.Send(tuple(1, 2), 1500) // queues behind the first: higher delay
	sim.Run()
	lat := h2.Latencies()
	if len(lat) != 2 {
		t.Fatalf("latencies = %v", lat)
	}
	if !AlmostEqual(lat[0], 0.022, 1e-9) {
		t.Errorf("first latency = %g, want 0.022", lat[0])
	}
	if !AlmostEqual(lat[1], 0.034, 1e-9) {
		t.Errorf("queued latency = %g, want 0.034", lat[1])
	}
	// Untracked host records nothing.
	if len(h1.Latencies()) != 0 {
		t.Error("untracked host recorded latencies")
	}
}
