package netsim

import (
	"testing"
)

// star builds h1 -- s -- h2 (+optional h3 on port 3).
func star(t *testing.T, threeHosts bool) (*Sim, *Host, *Switch, *Host, *Host) {
	t.Helper()
	sim := NewSim()
	h1 := NewHost(sim, "h1", MustAddr("10.0.0.1"))
	h2 := NewHost(sim, "h2", MustAddr("10.0.0.2"))
	s := NewSwitch(sim, "s1")
	Connect(sim, h1, 1, s, 1, 1e9, 0, 0)
	Connect(sim, h2, 1, s, 2, 1e9, 0, 0)
	var h3 *Host
	if threeHosts {
		h3 = NewHost(sim, "h3", MustAddr("10.0.0.3"))
		Connect(sim, h3, 1, s, 3, 1e9, 0, 0)
	}
	return sim, h1, s, h2, h3
}

func TestSwitchForwardsOnMatch(t *testing.T) {
	sim, h1, s, h2, _ := star(t, false)
	rule := s.InstallRule(Rule{Priority: 1, Match: Match{Dst: h2.Addr}, Action: Output(2)})
	h1.Send(tuple(5000, 80), 500)
	sim.Run()
	if h2.RxPackets != 1 {
		t.Fatalf("h2 rx = %d", h2.RxPackets)
	}
	if rule.Packets != 1 || rule.Bytes != 500 {
		t.Errorf("rule counters = %d pkts %d bytes", rule.Packets, rule.Bytes)
	}
	if s.RxPackets != 1 || s.TxPackets != 1 {
		t.Errorf("switch counters rx=%d tx=%d", s.RxPackets, s.TxPackets)
	}
}

func TestSwitchTableMissDrops(t *testing.T) {
	sim, h1, s, h2, _ := star(t, false)
	h1.Send(tuple(1, 2), 100)
	sim.Run()
	if h2.RxPackets != 0 {
		t.Error("miss should drop")
	}
	if s.TableMisses != 1 {
		t.Errorf("misses = %d", s.TableMisses)
	}
}

func TestSwitchMissToController(t *testing.T) {
	sim, h1, s, _, _ := star(t, false)
	s.MissToController = true
	var punted *Packet
	s.PacketIn = func(sw *Switch, pkt *Packet, inPort int) {
		punted = pkt
		if inPort != 1 {
			t.Errorf("inPort = %d", inPort)
		}
	}
	h1.Send(tuple(1, 2), 100)
	sim.Run()
	if punted == nil {
		t.Fatal("no PacketIn")
	}
}

func TestSwitchPriorityOrdering(t *testing.T) {
	sim, h1, s, h2, _ := star(t, false)
	s.InstallRule(Rule{Priority: 1, Match: Match{}, Action: Drop()})
	s.InstallRule(Rule{Priority: 10, Match: Match{Dst: h2.Addr}, Action: Output(2)})
	h1.Send(tuple(1, 80), 100)
	sim.Run()
	if h2.RxPackets != 1 {
		t.Error("higher-priority output rule should win over low-priority drop")
	}
}

func TestSwitchEqualPriorityFIFO(t *testing.T) {
	sim, h1, s, h2, _ := star(t, false)
	first := s.InstallRule(Rule{Priority: 5, Match: Match{}, Action: Output(2)})
	second := s.InstallRule(Rule{Priority: 5, Match: Match{}, Action: Drop()})
	h1.Send(tuple(1, 80), 100)
	sim.Run()
	if first.Packets != 1 || second.Packets != 0 {
		t.Errorf("first=%d second=%d; earlier-installed equal-priority rule should win",
			first.Packets, second.Packets)
	}
	if h2.RxPackets != 1 {
		t.Error("packet should have been forwarded")
	}
}

func TestSwitchMatchFields(t *testing.T) {
	pkt := &Packet{Flow: tuple(1000, 80)}
	cases := []struct {
		name string
		m    Match
		want bool
	}{
		{"wildcard", Match{}, true},
		{"dst port hit", Match{DstPort: 80}, true},
		{"dst port miss", Match{DstPort: 81}, false},
		{"src hit", Match{Src: MustAddr("10.0.0.1")}, true},
		{"src miss", Match{Src: MustAddr("10.9.9.9")}, false},
		{"dst hit", Match{Dst: MustAddr("10.0.0.2")}, true},
		{"proto hit", Match{Proto: ProtoTCP}, true},
		{"proto miss", Match{Proto: ProtoUDP}, false},
		{"src port hit", Match{SrcPort: 1000}, true},
		{"src port miss", Match{SrcPort: 2}, false},
		{"in port hit", Match{InPort: 3}, true},
		{"combo", Match{DstPort: 80, Proto: ProtoTCP, InPort: 3}, true},
	}
	for _, tc := range cases {
		if got := tc.m.Matches(pkt, 3); got != tc.want {
			t.Errorf("%s: got %v", tc.name, got)
		}
	}
	if (Match{InPort: 2}).Matches(pkt, 3) {
		t.Error("in-port mismatch should fail")
	}
}

func TestSwitchSplitRoundRobin(t *testing.T) {
	sim, h1, s, h2, h3 := star(t, true)
	_ = h2
	_ = h3
	s.InstallRule(Rule{Priority: 1, Match: Match{}, Action: Split(2, 3)})
	for i := 0; i < 10; i++ {
		h1.Send(tuple(1, 80), 100)
	}
	sim.Run()
	if h2.RxPackets != 5 || h3.RxPackets != 5 {
		t.Errorf("split = %d/%d, want 5/5", h2.RxPackets, h3.RxPackets)
	}
}

func TestSwitchFlood(t *testing.T) {
	sim, h1, s, h2, h3 := star(t, true)
	s.InstallRule(Rule{Priority: 1, Match: Match{}, Action: Action{Kind: ActionFlood}})
	h1.Send(tuple(1, 80), 100)
	sim.Run()
	if h2.RxPackets != 1 || h3.RxPackets != 1 {
		t.Errorf("flood delivered %d/%d", h2.RxPackets, h3.RxPackets)
	}
	if h1.RxPackets != 0 {
		t.Error("flood must not echo to ingress")
	}
}

func TestSwitchControllerAction(t *testing.T) {
	sim, h1, s, _, _ := star(t, false)
	hits := 0
	s.PacketIn = func(*Switch, *Packet, int) { hits++ }
	s.InstallRule(Rule{Priority: 1, Match: Match{DstPort: 22}, Action: Action{Kind: ActionController}})
	f := tuple(1, 22)
	h1.Send(f, 100)
	sim.Run()
	if hits != 1 {
		t.Errorf("controller hits = %d", hits)
	}
}

func TestSwitchTapSeesEverything(t *testing.T) {
	sim, h1, s, h2, _ := star(t, false)
	var tapped []uint16
	s.Tap = func(pkt *Packet, _ int) { tapped = append(tapped, pkt.Flow.DstPort) }
	s.InstallRule(Rule{Priority: 1, Match: Match{Dst: h2.Addr}, Action: Output(2)})
	h1.Send(tuple(1, 80), 100)
	h1.Send(tuple(1, 9999), 100) // will miss the table; tap still sees it
	sim.Run()
	if len(tapped) != 2 || tapped[0] != 80 || tapped[1] != 9999 {
		t.Errorf("tapped = %v", tapped)
	}
}

func TestSwitchRemoveRules(t *testing.T) {
	sim, h1, s, h2, _ := star(t, false)
	s.InstallRule(Rule{Priority: 1, Match: Match{DstPort: 80}, Action: Output(2)})
	s.InstallRule(Rule{Priority: 1, Match: Match{DstPort: 81}, Action: Output(2)})
	if n := s.RemoveRules(func(r *Rule) bool { return r.Match.DstPort == 80 }); n != 1 {
		t.Fatalf("removed = %d", n)
	}
	h1.Send(tuple(1, 80), 100)
	h1.Send(tuple(1, 81), 100)
	sim.Run()
	if h2.RxPackets != 1 {
		t.Errorf("rx = %d, want only port-81 packet", h2.RxPackets)
	}
	if len(s.Rules()) != 1 {
		t.Errorf("rules = %d", len(s.Rules()))
	}
}

func TestSwitchLoopGuard(t *testing.T) {
	// Two switches forwarding to each other forever: loop guard must
	// kill the packet.
	sim := NewSim()
	a := NewSwitch(sim, "a")
	b := NewSwitch(sim, "b")
	h := NewHost(sim, "h", MustAddr("10.0.0.1"))
	Connect(sim, h, 1, a, 1, 1e9, 0, 0)
	Connect(sim, a, 2, b, 1, 1e9, 0, 0)
	a.InstallRule(Rule{Priority: 1, Match: Match{}, Action: Output(2)})
	b.InstallRule(Rule{Priority: 1, Match: Match{}, Action: Output(1)})
	h.Send(tuple(1, 2), 100)
	sim.Run()
	if a.LoopDrops+b.LoopDrops != 1 {
		t.Errorf("loop drops = %d, want 1", a.LoopDrops+b.LoopDrops)
	}
}

func TestSwitchQueueLen(t *testing.T) {
	sim := NewSim()
	h1 := NewHost(sim, "h1", MustAddr("10.0.0.1"))
	h2 := NewHost(sim, "h2", MustAddr("10.0.0.2"))
	s := NewSwitch(sim, "s")
	Connect(sim, h1, 1, s, 1, 1e9, 0, 0)
	Connect(sim, s, 2, h2, 1, 1e5, 0, 100) // slow egress
	s.InstallRule(Rule{Priority: 1, Match: Match{}, Action: Output(2)})
	for i := 0; i < 50; i++ {
		h1.Send(tuple(1, 2), 1500)
	}
	sim.RunUntil(0.001)
	if got := s.QueueLen(2); got < 40 {
		t.Errorf("queue len = %d, want most of the burst queued", got)
	}
	if s.QueueLen(99) != 0 {
		t.Error("unknown port should report 0")
	}
	sim.RunUntil(10)
	if s.QueueLen(2) != 0 {
		t.Error("queue should drain")
	}
	if h2.RxPackets != 50 {
		t.Errorf("delivered = %d", h2.RxPackets)
	}
}

func TestSwitchDuplicatePortPanics(t *testing.T) {
	sim := NewSim()
	s := NewSwitch(sim, "s")
	h1 := NewHost(sim, "h1", MustAddr("10.0.0.1"))
	h2 := NewHost(sim, "h2", MustAddr("10.0.0.2"))
	Connect(sim, h1, 1, s, 1, 1e9, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Connect(sim, h2, 1, s, 1, 1e9, 0, 0)
}

func TestActionKindString(t *testing.T) {
	names := map[ActionKind]string{
		ActionDrop: "drop", ActionOutput: "output", ActionSplit: "split",
		ActionFlood: "flood", ActionController: "controller", ActionKind(42): "unknown",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}
