package netsim

import "testing"

func TestLineForwardsBothWays(t *testing.T) {
	sim := NewSim()
	l := NewLine(sim, 3, LinkSpec{RateBps: 1e9, Latency: 0.001})
	f := FiveTuple{Src: l.H1.Addr, Dst: l.H2.Addr, SrcPort: 1, DstPort: 2, Proto: ProtoUDP}
	l.H1.Send(f, 100)
	l.H2.Send(f.Reverse(), 100)
	sim.Run()
	if l.H2.RxPackets != 1 {
		t.Errorf("h2 rx = %d", l.H2.RxPackets)
	}
	if l.H1.RxPackets != 1 {
		t.Errorf("h1 rx = %d", l.H1.RxPackets)
	}
}

func TestLinePanicsOnZeroSwitches(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLine(NewSim(), 0, LinkSpec{RateBps: 1e9})
}

func TestRhombusSinglePathInitially(t *testing.T) {
	sim := NewSim()
	r := NewRhombus(sim, LinkSpec{RateBps: 1e9, Latency: 0.001})
	f := FiveTuple{Src: r.H1.Addr, Dst: r.H2.Addr, SrcPort: 1, DstPort: 2, Proto: ProtoUDP}
	for i := 0; i < 10; i++ {
		r.H1.Send(f, 100)
	}
	sim.Run()
	if r.H2.RxPackets != 10 {
		t.Fatalf("h2 rx = %d", r.H2.RxPackets)
	}
	if r.S2.RxPackets != 10 {
		t.Errorf("upper path rx = %d, want all 10", r.S2.RxPackets)
	}
	if r.S3.RxPackets != 0 {
		t.Errorf("lower path rx = %d, want 0 before balancing", r.S3.RxPackets)
	}
}

func TestRhombusBalanceSplitsTraffic(t *testing.T) {
	sim := NewSim()
	r := NewRhombus(sim, LinkSpec{RateBps: 1e9, Latency: 0.001})
	r.BalanceUpper()
	f := FiveTuple{Src: r.H1.Addr, Dst: r.H2.Addr, SrcPort: 1, DstPort: 2, Proto: ProtoUDP}
	for i := 0; i < 10; i++ {
		r.H1.Send(f, 100)
	}
	sim.Run()
	if r.H2.RxPackets != 10 {
		t.Fatalf("h2 rx = %d", r.H2.RxPackets)
	}
	if r.S2.RxPackets != 5 || r.S3.RxPackets != 5 {
		t.Errorf("split = %d/%d, want 5/5", r.S2.RxPackets, r.S3.RxPackets)
	}
}

func TestRhombusReversePath(t *testing.T) {
	sim := NewSim()
	r := NewRhombus(sim, LinkSpec{RateBps: 1e9, Latency: 0.001})
	f := FiveTuple{Src: r.H2.Addr, Dst: r.H1.Addr, SrcPort: 2, DstPort: 1, Proto: ProtoUDP}
	r.H2.Send(f, 100)
	sim.Run()
	if r.H1.RxPackets != 1 {
		t.Errorf("h1 rx = %d", r.H1.RxPackets)
	}
}
