package netsim_test

import (
	"fmt"

	"mdn/internal/netsim"
)

// Build a two-host network with one switch, install a forwarding
// rule, and send traffic — the simulator's basic loop.
func Example() {
	sim := netsim.NewSim()
	h1 := netsim.NewHost(sim, "h1", netsim.MustAddr("10.0.0.1"))
	h2 := netsim.NewHost(sim, "h2", netsim.MustAddr("10.0.0.2"))
	sw := netsim.NewSwitch(sim, "s1")
	netsim.Connect(sim, h1, 1, sw, 1, 1e9, 0.001, 0)
	netsim.Connect(sim, h2, 1, sw, 2, 1e9, 0.001, 0)
	sw.InstallRule(netsim.Rule{
		Priority: 1,
		Match:    netsim.Match{Dst: h2.Addr},
		Action:   netsim.Output(2),
	})

	flow := netsim.FiveTuple{
		Src: h1.Addr, Dst: h2.Addr,
		SrcPort: 1234, DstPort: 80, Proto: netsim.ProtoTCP,
	}
	netsim.StartCBR(sim, h1, flow, 100, 1500, 0, 1)
	sim.Run()

	fmt.Printf("delivered %d packets (%d bytes)\n", h2.RxPackets, h2.RxBytes)
	// Output: delivered 100 packets (150000 bytes)
}
