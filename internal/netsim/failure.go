package netsim

// Link-failure modelling: the paper's core motivation (Section 1) is
// that in-band management traffic dies with the data plane, while an
// out-of-band channel — sound — survives. SetLinkState lets
// experiments cut a link mid-run and watch which control path keeps
// working.

// PortStateHandler observes port up/down transitions on a node.
type PortStateHandler func(port int, up bool)

// SetDown marks the port (and its peer) up or down. Packets sent into
// a downed port — including those already queued — are dropped.
func (p *Port) SetDown(down bool) {
	p.down = down
	if p.peer != nil {
		p.peer.down = down
	}
	if down {
		// Drain the output queues: frames on a dead wire are lost
		// (and recycled if pool-born).
		for pkt := p.Out.Pop(); pkt != nil; pkt = p.Out.Pop() {
			p.lostOnDown++
			p.sim.releasePacket(pkt)
		}
		if p.peer != nil {
			for pkt := p.peer.Out.Pop(); pkt != nil; pkt = p.peer.Out.Pop() {
				p.peer.lostOnDown++
				p.peer.sim.releasePacket(pkt)
			}
		}
	}
	notify := func(side *Port) {
		if side == nil {
			return
		}
		if sw, ok := side.Owner.(*Switch); ok && sw.OnPortState != nil {
			sw.OnPortState(side.Index, !down)
		}
	}
	notify(p)
	notify(p.peer)
}

// Down reports whether the port is administratively or physically
// down.
func (p *Port) Down() bool { return p.down }

// LostOnDown returns packets flushed from this port's queue by a
// link-down event.
func (p *Port) LostOnDown() uint64 { return p.lostOnDown }
