package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property tests on simulator invariants: conservation (nothing
// delivered that was not sent; everything sent is delivered, dropped,
// or in flight when links are lossless and queues unbounded), and
// per-flow FIFO ordering.

func TestConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sim := NewSim()
		l := NewLine(sim, 1+rng.Intn(3), LinkSpec{RateBps: 1e6, Latency: 0.001})
		flow := FiveTuple{Src: l.H1.Addr, Dst: l.H2.Addr,
			SrcPort: uint16(rng.Intn(60000)), DstPort: 80, Proto: ProtoUDP}
		pps := 50 + rng.Float64()*200
		src := StartPoisson(sim, l.H1, flow, pps, 500, 0, 2, seed)
		sim.Run() // drain everything
		// Lossless line with unbounded queues: all sent packets
		// arrive, none are invented.
		return l.H2.RxPackets == src.Sent && l.H1.TxPackets == src.Sent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestConservationWithDropsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sim := NewSim()
		h1 := NewHost(sim, "h1", MustAddr("10.0.0.1"))
		h2 := NewHost(sim, "h2", MustAddr("10.0.0.2"))
		qcap := 1 + rng.Intn(20)
		pa, _ := Connect(sim, h1, 1, h2, 1, 1e5, 0.001, qcap)
		flow := FiveTuple{Src: h1.Addr, Dst: h2.Addr, SrcPort: 7, DstPort: 80, Proto: ProtoUDP}
		src := StartCBR(sim, h1, flow, 500, 1500, 0, 0.5)
		sim.Run()
		// sent == delivered + dropped (queue drops only on this hop).
		return src.Sent == h2.RxPackets+pa.Out.Drops()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPerFlowFIFOProperty(t *testing.T) {
	// Packets of one flow must arrive in send order over any line.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sim := NewSim()
		l := NewLine(sim, 1+rng.Intn(4), LinkSpec{RateBps: 1e6, Latency: 0.002, QueueCap: 50})
		var ids []uint64
		l.H2.OnReceive = func(p *Packet) { ids = append(ids, p.ID) }
		flow := FiveTuple{Src: l.H1.Addr, Dst: l.H2.Addr, SrcPort: 1, DstPort: 2, Proto: ProtoUDP}
		StartPoisson(sim, l.H1, flow, 300, 800, 0, 1, seed)
		sim.Run()
		for i := 1; i < len(ids); i++ {
			if ids[i] <= ids[i-1] {
				return false
			}
		}
		return len(ids) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestHashSplitFlowAffinity(t *testing.T) {
	// ECMP: each flow sticks to one path; across many flows both
	// paths are used.
	sim := NewSim()
	h1 := NewHost(sim, "h1", MustAddr("10.0.0.1"))
	h2 := NewHost(sim, "h2", MustAddr("10.0.0.2"))
	h3 := NewHost(sim, "h3", MustAddr("10.0.0.3"))
	s := NewSwitch(sim, "s")
	Connect(sim, h1, 1, s, 1, 1e9, 0, 0)
	Connect(sim, h2, 1, s, 2, 1e9, 0, 0)
	Connect(sim, h3, 1, s, 3, 1e9, 0, 0)
	s.InstallRule(Rule{Priority: 1, Match: Match{}, Action: HashSplit(2, 3)})

	perFlowPort := map[uint16]map[string]bool{}
	h2.OnReceive = func(p *Packet) { record(perFlowPort, p, "h2") }
	h3.OnReceive = func(p *Packet) { record(perFlowPort, p, "h3") }
	for srcPort := uint16(1000); srcPort < 1064; srcPort++ {
		for i := 0; i < 3; i++ {
			h1.Send(FiveTuple{Src: h1.Addr, Dst: MustAddr("10.0.0.9"),
				SrcPort: srcPort, DstPort: 80, Proto: ProtoTCP}, 100)
		}
	}
	sim.Run()
	usedH2, usedH3 := false, false
	for port, sinks := range perFlowPort {
		if len(sinks) != 1 {
			t.Errorf("flow %d used %d paths, want 1", port, len(sinks))
		}
		if sinks["h2"] {
			usedH2 = true
		}
		if sinks["h3"] {
			usedH3 = true
		}
	}
	if !usedH2 || !usedH3 {
		t.Errorf("ECMP left a path idle: h2=%v h3=%v", usedH2, usedH3)
	}
}

func record(m map[uint16]map[string]bool, p *Packet, sink string) {
	if m[p.Flow.SrcPort] == nil {
		m[p.Flow.SrcPort] = map[string]bool{}
	}
	m[p.Flow.SrcPort][sink] = true
}

func TestRoundRobinSplitReordersAcrossPathsButECMPDoesNot(t *testing.T) {
	// Demonstrates why ECMP exists: with asymmetric path latencies,
	// RR split reorders one flow's packets; hash split cannot.
	build := func(action Action) []uint64 {
		sim := NewSim()
		h1 := NewHost(sim, "h1", MustAddr("10.0.0.1"))
		h2 := NewHost(sim, "h2", MustAddr("10.0.0.2"))
		s1 := NewSwitch(sim, "s1")
		s2 := NewSwitch(sim, "s2") // fast path
		s3 := NewSwitch(sim, "s3") // slow path
		s4 := NewSwitch(sim, "s4")
		Connect(sim, h1, 1, s1, 1, 1e9, 0.0001, 0)
		Connect(sim, s1, 2, s2, 1, 1e9, 0.0001, 0)
		Connect(sim, s1, 3, s3, 1, 1e9, 0.050, 0) // 50 ms slower
		Connect(sim, s2, 2, s4, 1, 1e9, 0.0001, 0)
		Connect(sim, s3, 2, s4, 2, 1e9, 0.0001, 0)
		Connect(sim, s4, 3, h2, 1, 1e9, 0.0001, 0)
		s1.InstallRule(Rule{Priority: 1, Match: Match{}, Action: action})
		fwd := Rule{Priority: 1, Match: Match{}, Action: Output(2)}
		s2.InstallRule(fwd)
		s3.InstallRule(fwd)
		s4.InstallRule(Rule{Priority: 1, Match: Match{}, Action: Output(3)})
		var ids []uint64
		h2.OnReceive = func(p *Packet) { ids = append(ids, p.ID) }
		flow := FiveTuple{Src: h1.Addr, Dst: h2.Addr, SrcPort: 5, DstPort: 80, Proto: ProtoUDP}
		StartCBR(sim, h1, flow, 100, 500, 0, 0.2)
		sim.Run()
		return ids
	}
	inOrder := func(ids []uint64) bool {
		for i := 1; i < len(ids); i++ {
			if ids[i] <= ids[i-1] {
				return false
			}
		}
		return true
	}
	if rr := build(Split(2, 3)); inOrder(rr) {
		t.Error("round-robin over asymmetric paths should reorder (test topology too gentle?)")
	}
	if ecmp := build(HashSplit(2, 3)); !inOrder(ecmp) {
		t.Error("hash split must preserve per-flow order")
	}
}
