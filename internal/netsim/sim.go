// Package netsim is a deterministic discrete-event network simulator:
// hosts, links with rate and propagation delay, switches with
// drop-tail FIFO queues and prioritised match-action flow tables, and
// traffic generators. It stands in for the paper's physical Zodiac FX
// testbed and its Mininet virtual testbed.
//
// Time is virtual (float64 seconds). All randomness is seeded. Events
// with equal timestamps fire in scheduling order, so runs are exactly
// reproducible.
//
// The engine is built to drive millions of flows per simulated second:
// the event heap is a value-typed binary heap (no interface{} boxing,
// no per-event allocation once warm), the per-packet transmit and
// deliver steps are typed events rather than captured closures, and an
// opt-in packet free list (EnablePacketPool) recycles Packet structs
// through the Host.Send → Port → Switch forwarding path, so the
// steady-state per-packet cost is zero allocations.
package netsim

// Event kinds. evFunc is the general callback; evTxDone and evDeliver
// are the two per-packet steps of every link traversal, encoded as
// typed events so forwarding never allocates a closure.
const (
	evFunc uint8 = iota
	evTxDone
	evDeliver
)

// event is one scheduled occurrence.
type event struct {
	at   float64
	seq  uint64
	kind uint8
	fn   func()  // evFunc
	port *Port   // evTxDone: transmitter; evDeliver: transmitting side
	pkt  *Packet // evDeliver
}

// before orders events by time, then scheduling order.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventHeap is a value-typed binary min-heap. Compared to
// container/heap it neither boxes events through interface{} nor
// allocates per push: the backing array is reused across the run, so
// steady-state scheduling costs zero allocations.
type eventHeap []event

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].before(&s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release fn/port/pkt references
	s = s[:n]
	*h = s
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		min := left
		if right := left + 1; right < n && s[right].before(&s[left]) {
			min = right
		}
		if !s[min].before(&s[i]) {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// Sim is the discrete-event engine. The zero value is not usable; use
// NewSim.
type Sim struct {
	now    float64
	seq    uint64
	events eventHeap

	// Events counts processed events of every kind — the engine's
	// throughput numerator (events per wall second, events per
	// simulated second).
	Events uint64

	pool        []*Packet
	poolEnabled bool
	// PacketsPooled counts allocations served from the free list;
	// PacketsAllocated counts the ones that hit the heap.
	PacketsPooled    uint64
	PacketsAllocated uint64
}

// NewSim returns an engine at time zero.
func NewSim() *Sim {
	return &Sim{}
}

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// Schedule runs fn at virtual time at. Times in the past run
// immediately at the current time (the engine never travels backward).
func (s *Sim) Schedule(at float64, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	s.events.push(event{at: at, seq: s.seq, kind: evFunc, fn: fn})
}

// scheduleTxDone arms the end of a frame's serialisation on port.
func (s *Sim) scheduleTxDone(at float64, p *Port) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	s.events.push(event{at: at, seq: s.seq, kind: evTxDone, port: p})
}

// scheduleDeliver arms a frame's arrival at the far end of p's link.
func (s *Sim) scheduleDeliver(at float64, p *Port, pkt *Packet) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	s.events.push(event{at: at, seq: s.seq, kind: evDeliver, port: p, pkt: pkt})
}

// dispatch runs one event.
func (s *Sim) dispatch(e *event) {
	s.Events++
	switch e.kind {
	case evFunc:
		e.fn()
	case evTxDone:
		e.port.txDone()
	case evDeliver:
		e.port.deliver(e.pkt)
	}
}

// After runs fn after d seconds of virtual time.
func (s *Sim) After(d float64, fn func()) {
	s.Schedule(s.now+d, fn)
}

// EnablePacketPool turns on packet recycling: Host.Send draws Packet
// structs from a free list and the forwarding plane returns them when
// a packet reaches its end (delivered to a host, dropped by a queue, a
// downed link, a drop rule, or the loop guard). With the pool on, a
// packet passed to Tap, PacketIn or OnReceive callbacks is only valid
// for the duration of the call — handlers must copy what they keep.
// Packets built by hand (&Packet{...}) are unaffected: Release is a
// no-op for them.
func (s *Sim) EnablePacketPool() { s.poolEnabled = true }

// PacketPoolEnabled reports whether EnablePacketPool was called.
func (s *Sim) PacketPoolEnabled() bool { return s.poolEnabled }

// newPacket returns a zeroed packet, recycled when the pool is on.
func (s *Sim) newPacket() *Packet {
	if s.poolEnabled {
		if n := len(s.pool); n > 0 {
			p := s.pool[n-1]
			s.pool[n-1] = nil
			s.pool = s.pool[:n-1]
			s.PacketsPooled++
			*p = Packet{pooled: true}
			return p
		}
		s.PacketsAllocated++
		return &Packet{pooled: true}
	}
	s.PacketsAllocated++
	return &Packet{}
}

// releasePacket returns a pool-born packet to the free list. Hand-built
// packets pass through untouched.
func (s *Sim) releasePacket(p *Packet) {
	if p == nil || !p.pooled {
		return
	}
	p.pooled = false // guard against double release
	s.pool = append(s.pool, p)
}

// Ticker identifies a repeating task started with Every; Stop cancels
// future firings.
type Ticker struct {
	stopped bool
}

// Stop cancels the ticker.
func (t *Ticker) Stop() { t.stopped = true }

// Every runs fn at start, start+interval, start+2*interval, ... until
// the returned Ticker is stopped. fn receives the firing time.
func (s *Sim) Every(start, interval float64, fn func(now float64)) *Ticker {
	if interval <= 0 {
		panic("netsim: Every requires a positive interval")
	}
	t := &Ticker{}
	var tick func()
	at := start
	tick = func() {
		if t.stopped {
			return
		}
		fn(s.now)
		at += interval
		s.Schedule(at, tick)
	}
	s.Schedule(start, tick)
	return t
}

// RunUntil processes events up to and including time t, then sets the
// clock to t. It returns the number of events processed.
func (s *Sim) RunUntil(t float64) int {
	n := 0
	for len(s.events) > 0 && s.events[0].at <= t {
		e := s.events.pop()
		s.now = e.at
		s.dispatch(&e)
		n++
	}
	if t > s.now {
		s.now = t
	}
	return n
}

// Run processes every pending event (including those scheduled while
// running), leaving the clock at the last event's time. Use RunUntil
// for experiments with repeating tickers, which never drain. It
// returns the number of events processed.
func (s *Sim) Run() int {
	n := 0
	for len(s.events) > 0 {
		e := s.events.pop()
		s.now = e.at
		s.dispatch(&e)
		n++
	}
	return n
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.events) }
