// Package netsim is a deterministic discrete-event network simulator:
// hosts, links with rate and propagation delay, switches with
// drop-tail FIFO queues and prioritised match-action flow tables, and
// traffic generators. It stands in for the paper's physical Zodiac FX
// testbed and its Mininet virtual testbed.
//
// Time is virtual (float64 seconds). All randomness is seeded. Events
// with equal timestamps fire in scheduling order, so runs are exactly
// reproducible.
package netsim

import "container/heap"

// event is one scheduled callback.
type event struct {
	at  float64
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is the discrete-event engine. The zero value is not usable; use
// NewSim.
type Sim struct {
	now    float64
	seq    uint64
	events eventHeap
}

// NewSim returns an engine at time zero.
func NewSim() *Sim {
	s := &Sim{}
	heap.Init(&s.events)
	return s
}

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// Schedule runs fn at virtual time at. Times in the past run
// immediately at the current time (the engine never travels backward).
func (s *Sim) Schedule(at float64, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.events, &event{at: at, seq: s.seq, fn: fn})
}

// After runs fn after d seconds of virtual time.
func (s *Sim) After(d float64, fn func()) {
	s.Schedule(s.now+d, fn)
}

// Ticker identifies a repeating task started with Every; Stop cancels
// future firings.
type Ticker struct {
	stopped bool
}

// Stop cancels the ticker.
func (t *Ticker) Stop() { t.stopped = true }

// Every runs fn at start, start+interval, start+2*interval, ... until
// the returned Ticker is stopped. fn receives the firing time.
func (s *Sim) Every(start, interval float64, fn func(now float64)) *Ticker {
	if interval <= 0 {
		panic("netsim: Every requires a positive interval")
	}
	t := &Ticker{}
	var tick func()
	at := start
	tick = func() {
		if t.stopped {
			return
		}
		fn(s.now)
		at += interval
		s.Schedule(at, tick)
	}
	s.Schedule(start, tick)
	return t
}

// RunUntil processes events up to and including time t, then sets the
// clock to t. It returns the number of events processed.
func (s *Sim) RunUntil(t float64) int {
	n := 0
	for s.events.Len() > 0 && s.events[0].at <= t {
		e := heap.Pop(&s.events).(*event)
		s.now = e.at
		e.fn()
		n++
	}
	if t > s.now {
		s.now = t
	}
	return n
}

// Run processes every pending event (including those scheduled while
// running), leaving the clock at the last event's time. Use RunUntil
// for experiments with repeating tickers, which never drain. It
// returns the number of events processed.
func (s *Sim) Run() int {
	n := 0
	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(*event)
		s.now = e.at
		e.fn()
		n++
	}
	return n
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return s.events.Len() }
