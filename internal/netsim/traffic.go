package netsim

import (
	"math"
	"math/rand"
)

// Source is a running traffic generator; Stop halts it.
type Source struct {
	stopped bool
	// Sent counts packets emitted so far.
	Sent uint64
}

// Stop halts the generator before its natural end.
func (s *Source) Stop() { s.stopped = true }

// StartCBR emits size-byte packets of the given flow from host at a
// constant rate of pps packets/second over [start, stop).
func StartCBR(sim *Sim, h *Host, flow FiveTuple, pps float64, size int, start, stop float64) *Source {
	if pps <= 0 {
		panic("netsim: CBR rate must be positive")
	}
	src := &Source{}
	interval := 1 / pps
	var emit func()
	n := 0
	emit = func() {
		if src.stopped {
			return
		}
		h.Send(flow, size)
		src.Sent++
		n++
		// Counter-based timing avoids drift from accumulating the
		// interval in floating point.
		next := start + float64(n)*interval
		if next < stop {
			sim.Schedule(next, emit)
		}
	}
	sim.Schedule(start, emit)
	return src
}

// StartRamp emits packets whose rate grows linearly from startPPS at
// time start to endPPS at time stop — the paper's "progressively
// increasing rate" source in the load-balancing experiment.
func StartRamp(sim *Sim, h *Host, flow FiveTuple, startPPS, endPPS float64, size int, start, stop float64) *Source {
	if startPPS <= 0 || stop <= start {
		panic("netsim: ramp requires positive initial rate and stop > start")
	}
	src := &Source{}
	var emit func()
	emit = func() {
		if src.stopped {
			return
		}
		now := sim.Now()
		if now >= stop {
			return
		}
		h.Send(flow, size)
		src.Sent++
		frac := (now - start) / (stop - start)
		rate := startPPS + (endPPS-startPPS)*frac
		if rate < 1e-9 {
			rate = 1e-9
		}
		sim.After(1/rate, emit)
	}
	sim.Schedule(start, emit)
	return src
}

// StartPoisson emits packets with exponential inter-arrival times at
// mean rate pps, deterministically from seed.
func StartPoisson(sim *Sim, h *Host, flow FiveTuple, pps float64, size int, start, stop float64, seed int64) *Source {
	if pps <= 0 {
		panic("netsim: Poisson rate must be positive")
	}
	src := &Source{}
	rng := rand.New(rand.NewSource(seed))
	var emit func()
	emit = func() {
		if src.stopped || sim.Now() >= stop {
			return
		}
		h.Send(flow, size)
		src.Sent++
		sim.After(rng.ExpFloat64()/pps, emit)
	}
	sim.Schedule(start+rng.ExpFloat64()/pps, emit)
	return src
}

// StartPortScan sends one small probe per destination port in
// [firstPort, firstPort+count), spaced interval seconds apart — the
// naive scan of Section 5.
func StartPortScan(sim *Sim, h *Host, base FiveTuple, firstPort uint16, count int, interval, start float64) *Source {
	src := &Source{}
	for i := 0; i < count; i++ {
		port := firstPort + uint16(i)
		at := start + float64(i)*interval
		sim.Schedule(at, func() {
			if src.stopped {
				return
			}
			f := base
			f.DstPort = port
			h.Send(f, 64)
			src.Sent++
		})
	}
	return src
}

// FlowSpec describes one flow of a mix.
type FlowSpec struct {
	Flow FiveTuple
	// PPS is the flow's mean packet rate.
	PPS float64
	// Size is the packet size in bytes.
	Size int
}

// StartMix launches a Poisson source per flow spec (seeded
// independently); used to build the heavy-hitter workload of one
// elephant among mice.
func StartMix(sim *Sim, h *Host, specs []FlowSpec, start, stop float64, seed int64) []*Source {
	out := make([]*Source, len(specs))
	for i, sp := range specs {
		size := sp.Size
		if size <= 0 {
			size = DefaultPacketSize
		}
		out[i] = StartPoisson(sim, h, sp.Flow, sp.PPS, size, start, stop, seed+int64(i)*7919)
	}
	return out
}

// OfferedLoad returns the aggregate offered rate of a mix in bits per
// second.
func OfferedLoad(specs []FlowSpec) float64 {
	total := 0.0
	for _, sp := range specs {
		size := sp.Size
		if size <= 0 {
			size = DefaultPacketSize
		}
		total += sp.PPS * float64(size) * 8
	}
	return total
}

// RateToPPS converts a bit rate to packets/second for a packet size.
func RateToPPS(bps float64, size int) float64 {
	return bps / (float64(size) * 8)
}

// AlmostEqual reports whether two floats agree within tol — a helper
// for experiment assertions on virtual-time arithmetic.
func AlmostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

// PacedSource is a CBR source whose rate can be changed while it
// runs — the control surface for MDN congestion control, where the
// controller adjusts senders from queue tones instead of ECN marks.
type PacedSource struct {
	src  *Source
	sim  *Sim
	h    *Host
	flow FiveTuple
	size int
	stop float64

	rate float64
}

// StartPaced launches a rate-adjustable constant-bit-rate source.
func StartPaced(sim *Sim, h *Host, flow FiveTuple, pps float64, size int, start, stop float64) *PacedSource {
	if pps <= 0 {
		panic("netsim: paced rate must be positive")
	}
	p := &PacedSource{src: &Source{}, sim: sim, h: h, flow: flow, size: size, stop: stop, rate: pps}
	sim.Schedule(start, p.emit)
	return p
}

func (p *PacedSource) emit() {
	if p.src.stopped || p.sim.Now() >= p.stop {
		return
	}
	p.h.Send(p.flow, p.size)
	p.src.Sent++
	next := p.sim.Now() + 1/p.rate
	if next < p.stop {
		p.sim.Schedule(next, p.emit)
	}
}

// SetRate changes the sending rate (packets/second), taking effect
// from the next packet.
func (p *PacedSource) SetRate(pps float64) {
	if pps < 0.1 {
		pps = 0.1 // never fully starve; mirrors a minimum window
	}
	p.rate = pps
}

// Rate returns the current rate in packets/second.
func (p *PacedSource) Rate() float64 { return p.rate }

// Sent returns packets emitted so far.
func (p *PacedSource) Sent() uint64 { return p.src.Sent }

// Stop halts the source.
func (p *PacedSource) Stop() { p.src.Stop() }
