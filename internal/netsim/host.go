package netsim

import "net/netip"

// Host is an end system with a single network port.
type Host struct {
	// Name is the unique host name.
	Name string
	// Addr is the host's address.
	Addr netip.Addr

	// OnReceive, when set, observes every delivered packet.
	OnReceive func(pkt *Packet)

	sim  *Sim
	port *Port

	// RxPackets counts delivered packets.
	RxPackets uint64
	// RxBytes counts delivered bytes.
	RxBytes uint64
	// TxPackets counts sent packets.
	TxPackets uint64
	// TxBytes counts sent bytes.
	TxBytes uint64

	nextPktID uint64

	// rxLog records (time, cumulative bytes) pairs when sampling is
	// enabled with SampleGoodput.
	rxSamples []Sample
	sampler   *Ticker

	// latencies records per-packet one-way delay when enabled with
	// TrackLatency.
	latencies    []float64
	trackLatency bool
}

// Sample is one point of a sampled time series.
type Sample struct {
	// Time in virtual seconds.
	Time float64
	// Value of the sampled quantity.
	Value float64
}

// NewHost creates a host with the given address.
func NewHost(sim *Sim, name string, addr netip.Addr) *Host {
	return &Host{Name: name, Addr: addr, sim: sim}
}

// NodeName implements Node.
func (h *Host) NodeName() string { return h.Name }

func (h *Host) attachPort(p *Port) {
	if h.port != nil {
		panic("netsim: host " + h.Name + " already connected")
	}
	h.port = p
}

// Port returns the host's single port (nil before Connect).
func (h *Host) Port() *Port { return h.port }

// Receive implements Node.
func (h *Host) Receive(pkt *Packet, _ int) {
	h.RxPackets++
	h.RxBytes += uint64(pkt.Size)
	if h.trackLatency {
		h.latencies = append(h.latencies, h.sim.Now()-pkt.CreatedAt)
	}
	if h.OnReceive != nil {
		h.OnReceive(pkt)
	}
	// Delivery is the end of the packet's life; recycle it. With the
	// pool enabled, OnReceive must not retain the pointer.
	h.sim.releasePacket(pkt)
}

// TrackLatency starts recording each delivered packet's one-way delay
// (send timestamp to delivery).
func (h *Host) TrackLatency() { h.trackLatency = true }

// Latencies returns the recorded one-way delays in arrival order.
func (h *Host) Latencies() []float64 {
	out := make([]float64, len(h.latencies))
	copy(out, h.latencies)
	return out
}

// Send transmits one packet with the given flow and size right now.
func (h *Host) Send(flow FiveTuple, size int) {
	if h.port == nil {
		return
	}
	h.nextPktID++
	h.TxPackets++
	h.TxBytes += uint64(size)
	pkt := h.sim.newPacket()
	pkt.ID = h.nextPktID
	pkt.Flow = flow
	pkt.Size = size
	pkt.CreatedAt = h.sim.Now()
	h.port.Send(pkt)
}

// SampleGoodput records cumulative received bytes every interval
// seconds starting at start; RxSeries returns the series. Calling it
// again restarts sampling.
func (h *Host) SampleGoodput(start, interval float64) {
	if h.sampler != nil {
		h.sampler.Stop()
	}
	h.rxSamples = nil
	h.sampler = h.sim.Every(start, interval, func(now float64) {
		h.rxSamples = append(h.rxSamples, Sample{Time: now, Value: float64(h.RxBytes)})
	})
}

// RxSeries returns the sampled cumulative received-bytes series.
func (h *Host) RxSeries() []Sample {
	out := make([]Sample, len(h.rxSamples))
	copy(out, h.rxSamples)
	return out
}
