package netsim

import (
	"fmt"
	"math"
	"net/netip"
	"sort"
)

// Match selects packets for a flow rule. Zero-valued fields are
// wildcards (any); InPort 0 matches any ingress port.
type Match struct {
	InPort           int
	Src, Dst         netip.Addr
	SrcPort, DstPort uint16
	Proto            uint8
}

// Matches reports whether the packet arriving on inPort satisfies the
// match.
func (m Match) Matches(pkt *Packet, inPort int) bool {
	if m.InPort != 0 && m.InPort != inPort {
		return false
	}
	if m.Src.IsValid() && m.Src != pkt.Flow.Src {
		return false
	}
	if m.Dst.IsValid() && m.Dst != pkt.Flow.Dst {
		return false
	}
	if m.SrcPort != 0 && m.SrcPort != pkt.Flow.SrcPort {
		return false
	}
	if m.DstPort != 0 && m.DstPort != pkt.Flow.DstPort {
		return false
	}
	if m.Proto != 0 && m.Proto != pkt.Flow.Proto {
		return false
	}
	return true
}

// ActionKind enumerates what a matching rule does with a packet.
type ActionKind int

// Rule actions.
const (
	// ActionDrop discards the packet.
	ActionDrop ActionKind = iota
	// ActionOutput forwards out Ports[0].
	ActionOutput
	// ActionSplit round-robins packets across Ports — the paper's
	// load-balancing Flow-MOD splits traffic across two ports.
	ActionSplit
	// ActionFlood forwards out every port except the ingress.
	ActionFlood
	// ActionController punts the packet to the controller callback.
	ActionController
	// ActionHashSplit spreads flows across Ports by five-tuple hash
	// (ECMP): every packet of one flow takes the same path, avoiding
	// the reordering that round-robin ActionSplit can cause.
	ActionHashSplit
)

// Valid reports whether k is a defined action kind. The wire codecs
// reject anything else, so a flipped byte cannot install a rule whose
// action silently falls through to drop.
func (k ActionKind) Valid() bool { return k >= ActionDrop && k <= ActionHashSplit }

// String names the action kind.
func (k ActionKind) String() string {
	switch k {
	case ActionDrop:
		return "drop"
	case ActionOutput:
		return "output"
	case ActionSplit:
		return "split"
	case ActionFlood:
		return "flood"
	case ActionController:
		return "controller"
	case ActionHashSplit:
		return "hash-split"
	default:
		return "unknown"
	}
}

// Action is what a rule does with matching packets.
type Action struct {
	Kind  ActionKind
	Ports []int // for Output (first entry) and Split (all entries)
}

// Output returns a forward-to-port action.
func Output(port int) Action { return Action{Kind: ActionOutput, Ports: []int{port}} }

// Split returns a round-robin action over the given ports.
func Split(ports ...int) Action { return Action{Kind: ActionSplit, Ports: ports} }

// HashSplit returns an ECMP action over the given ports.
func HashSplit(ports ...int) Action { return Action{Kind: ActionHashSplit, Ports: ports} }

// Drop returns a drop action.
func Drop() Action { return Action{Kind: ActionDrop} }

// Rule is one prioritised flow-table entry.
type Rule struct {
	// Priority orders rules; higher wins. Equal priorities fall back
	// to installation order (earlier wins).
	Priority int
	// Match selects packets.
	Match Match
	// Action is applied to matching packets.
	Action Action
	// IdleTimeout evicts the rule after this many seconds without a
	// hit (0 = never). OpenFlow semantics: a knocked-open port closes
	// itself again when the authorised flow goes quiet.
	IdleTimeout float64
	// HardTimeout evicts the rule this many seconds after
	// installation regardless of traffic (0 = never).
	HardTimeout float64

	seq         uint64 // installation order
	rrNext      int    // round-robin cursor for ActionSplit
	installedAt float64
	lastHitAt   float64
	evicted     bool
	// Packets counts rule hits (like OpenFlow cookie counters).
	Packets uint64
	// Bytes counts rule-hit bytes.
	Bytes uint64
}

// Evicted reports whether a timeout removed the rule.
func (r *Rule) Evicted() bool { return r.evicted }

// Switch is a store-and-forward switch with a prioritised match-action
// flow table. It models both the paper's physical Zodiac FX and its
// Mininet virtual switches.
type Switch struct {
	// Name is the unique switch name.
	Name string

	// Tap, when set, observes every packet the switch receives
	// before table lookup. The MDN applications hang their
	// tone-emitting logic here (e.g. "play a sound whose frequency
	// is based on the destination port", Section 5).
	Tap func(pkt *Packet, inPort int)

	// PacketIn, when set, receives packets that hit an
	// ActionController rule or miss the table entirely (when
	// MissToController is true).
	PacketIn func(sw *Switch, pkt *Packet, inPort int)

	// MissToController punts table misses to PacketIn instead of
	// dropping them.
	MissToController bool

	// OnPortState, when set, observes port up/down transitions
	// (the OpenFlow Port-Status signal).
	OnPortState func(port int, up bool)

	sim     *Sim
	ports   map[int]*Port
	table   []*Rule
	ruleSeq uint64

	// Counters.
	RxPackets   uint64
	TxPackets   uint64
	TableMisses uint64
	LoopDrops   uint64
}

// NewSwitch creates an empty switch registered on the simulator.
func NewSwitch(sim *Sim, name string) *Switch {
	return &Switch{Name: name, sim: sim, ports: make(map[int]*Port)}
}

// NodeName implements Node.
func (s *Switch) NodeName() string { return s.Name }

func (s *Switch) attachPort(p *Port) {
	if _, dup := s.ports[p.Index]; dup {
		panic(fmt.Sprintf("netsim: switch %s port %d already connected", s.Name, p.Index))
	}
	s.ports[p.Index] = p
}

// Port returns the port with the given number, or nil.
func (s *Switch) Port(n int) *Port { return s.ports[n] }

// Ports returns the connected port numbers in ascending order.
func (s *Switch) Ports() []int {
	out := make([]int, 0, len(s.ports))
	for n := range s.ports {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// InstallRule adds a rule to the flow table, returning the installed
// rule (so callers can read its counters later). This is the
// switch-side effect of an OpenFlow Flow-MOD. Timeouts (if any) are
// enforced against the simulator clock.
func (s *Switch) InstallRule(r Rule) *Rule {
	s.ruleSeq++
	r.seq = s.ruleSeq
	r.installedAt = s.sim.Now()
	r.lastHitAt = r.installedAt
	rp := &r
	s.table = append(s.table, rp)
	sort.SliceStable(s.table, func(i, j int) bool {
		if s.table[i].Priority != s.table[j].Priority {
			return s.table[i].Priority > s.table[j].Priority
		}
		return s.table[i].seq < s.table[j].seq
	})
	s.scheduleEviction(rp)
	return rp
}

// scheduleEviction arms the rule's next timeout check.
func (s *Switch) scheduleEviction(r *Rule) {
	if r.IdleTimeout <= 0 && r.HardTimeout <= 0 {
		return
	}
	next := math.Inf(1)
	if r.HardTimeout > 0 {
		next = r.installedAt + r.HardTimeout
	}
	if r.IdleTimeout > 0 {
		if idle := r.lastHitAt + r.IdleTimeout; idle < next {
			next = idle
		}
	}
	s.sim.Schedule(next, func() {
		if r.evicted {
			return
		}
		now := s.sim.Now()
		hardDue := r.HardTimeout > 0 && now >= r.installedAt+r.HardTimeout-1e-12
		idleDue := r.IdleTimeout > 0 && now >= r.lastHitAt+r.IdleTimeout-1e-12
		if hardDue || idleDue {
			r.evicted = true
			s.RemoveRules(func(x *Rule) bool { return x == r })
			return
		}
		// Traffic refreshed the idle clock: re-arm.
		s.scheduleEviction(r)
	})
}

// RemoveRules deletes every rule matching the predicate and returns
// how many were removed. Removed rules are marked evicted so any
// pending timeout check terminates instead of re-arming forever on a
// rule that is no longer in the table.
func (s *Switch) RemoveRules(pred func(*Rule) bool) int {
	kept := s.table[:0]
	removed := 0
	for _, r := range s.table {
		if pred(r) {
			r.evicted = true
			removed++
		} else {
			kept = append(kept, r)
		}
	}
	s.table = kept
	return removed
}

// Rules returns the current table, highest priority first.
func (s *Switch) Rules() []*Rule {
	out := make([]*Rule, len(s.table))
	copy(out, s.table)
	return out
}

// Lookup returns the highest-priority rule matching the packet, or
// nil on a miss.
func (s *Switch) Lookup(pkt *Packet, inPort int) *Rule {
	for _, r := range s.table {
		if r.Match.Matches(pkt, inPort) {
			return r
		}
	}
	return nil
}

// Receive implements Node: table lookup and action execution.
func (s *Switch) Receive(pkt *Packet, inPort int) {
	s.RxPackets++
	pkt.Hops++
	if pkt.Hops > MaxHops {
		s.LoopDrops++
		s.sim.releasePacket(pkt)
		return
	}
	if s.Tap != nil {
		s.Tap(pkt, inPort)
	}
	rule := s.Lookup(pkt, inPort)
	if rule == nil {
		s.TableMisses++
		if s.MissToController && s.PacketIn != nil {
			// The handler may re-inject the packet (install a rule and
			// resend), so ownership transfers to it: no release here.
			s.PacketIn(s, pkt, inPort)
			return
		}
		s.sim.releasePacket(pkt)
		return
	}
	rule.Packets++
	rule.Bytes += uint64(pkt.Size)
	rule.lastHitAt = s.sim.Now()
	switch rule.Action.Kind {
	case ActionDrop:
		s.sim.releasePacket(pkt)
	case ActionOutput:
		if len(rule.Action.Ports) > 0 {
			s.sendOut(rule.Action.Ports[0], pkt)
		} else {
			s.sim.releasePacket(pkt)
		}
	case ActionSplit:
		if n := len(rule.Action.Ports); n > 0 {
			port := rule.Action.Ports[rule.rrNext%n]
			rule.rrNext++
			s.sendOut(port, pkt)
		} else {
			s.sim.releasePacket(pkt)
		}
	case ActionHashSplit:
		if n := len(rule.Action.Ports); n > 0 {
			port := rule.Action.Ports[pkt.Flow.Hash()%uint64(n)]
			s.sendOut(port, pkt)
		} else {
			s.sim.releasePacket(pkt)
		}
	case ActionFlood:
		for _, n := range s.Ports() {
			if n != inPort {
				// Each egress gets its own copy so per-copy Hops
				// accounting stays independent. Copies are not pool
				// members: the original alone returns to the free
				// list.
				cp := *pkt
				cp.pooled = false
				s.sendOut(n, &cp)
			}
		}
		s.sim.releasePacket(pkt)
	case ActionController:
		if s.PacketIn != nil {
			// As with table misses, the handler owns the packet.
			s.PacketIn(s, pkt, inPort)
		} else {
			s.sim.releasePacket(pkt)
		}
	}
}

func (s *Switch) sendOut(portNo int, pkt *Packet) {
	p := s.ports[portNo]
	if p == nil {
		return
	}
	s.TxPackets++
	p.Send(pkt)
}

// QueueLen returns the output-queue occupancy of the given port (0
// for unknown ports) — the quantity the paper polls with tc every
// 300 ms.
func (s *Switch) QueueLen(portNo int) int {
	p := s.ports[portNo]
	if p == nil {
		return 0
	}
	return p.Out.Len()
}
