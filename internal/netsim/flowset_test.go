package netsim

import (
	"testing"
)

// flowSetTopoFull builds the canonical h1 -> s1 -> h2 topology used by
// the flow-set and pool tests.
func flowSetTopoFull(t testing.TB, pool bool) (*Sim, *Host, *Host) {
	t.Helper()
	sim := NewSim()
	if pool {
		sim.EnablePacketPool()
	}
	h1 := NewHost(sim, "h1", MustAddr("10.0.0.1"))
	h2 := NewHost(sim, "h2", MustAddr("10.0.0.2"))
	sw := NewSwitch(sim, "s1")
	Connect(sim, h1, 1, sw, 1, 1e9, 1e-6, 0)
	Connect(sim, sw, 2, h2, 1, 1e9, 1e-6, 0)
	sw.InstallRule(Rule{Match: Match{Dst: h2.Addr}, Action: Output(2)})
	return sim, h1, h2
}

func flowSpecs(n int, pps float64) []FlowSpec {
	specs := make([]FlowSpec, n)
	for i := range specs {
		specs[i] = FlowSpec{
			Flow: FiveTuple{
				Src: MustAddr("10.0.0.1"), Dst: MustAddr("10.0.0.2"),
				SrcPort: uint16(1024 + i), DstPort: 80, Proto: ProtoUDP,
			},
			PPS:  pps,
			Size: 200,
		}
	}
	return specs
}

// TestFlowSetCBRCounts: each flow paces at its rate, so a 1-second run
// emits ~pps packets per flow (phase jitter trims at most one).
func TestFlowSetCBRCounts(t *testing.T) {
	sim, h1, h2 := flowSetTopoFull(t, true)
	if fs := StartFlowSet(sim, h1, FlowSetConfig{}); fs.Active() != 0 {
		t.Fatalf("empty flow set active = %d", fs.Active())
	}
	const n, pps = 50, 100.0
	fs := StartFlowSet(sim, h1, FlowSetConfig{
		Specs: flowSpecs(n, pps), Start: 0, Stop: 1, Seed: 7,
	})
	sim.RunUntil(2)
	want := uint64(n * pps)
	if fs.Sent < want-uint64(n) || fs.Sent > want {
		t.Fatalf("sent %d packets, want about %d", fs.Sent, want)
	}
	if h2.RxPackets != fs.Sent {
		t.Fatalf("received %d != sent %d", h2.RxPackets, fs.Sent)
	}
	if fs.Active() != 0 {
		t.Fatalf("%d flows still active after stop time", fs.Active())
	}
}

// TestFlowSetDeterministic: same seed, same packet count and receive
// byte count; different seed shifts the phase jitter.
func TestFlowSetDeterministic(t *testing.T) {
	run := func(seed int64, poisson bool) (uint64, uint64) {
		sim, h1, h2 := flowSetTopoFull(t, true)
		fs := StartFlowSet(sim, h1, FlowSetConfig{
			Specs: flowSpecs(20, 50), Start: 0, Stop: 2, Seed: seed, Poisson: poisson,
		})
		sim.RunUntil(3)
		return fs.Sent, h2.RxBytes
	}
	for _, poisson := range []bool{false, true} {
		aSent, aBytes := run(11, poisson)
		bSent, bBytes := run(11, poisson)
		if aSent != bSent || aBytes != bBytes {
			t.Fatalf("poisson=%v: same seed diverged: (%d,%d) vs (%d,%d)",
				poisson, aSent, aBytes, bSent, bBytes)
		}
		if aSent == 0 {
			t.Fatalf("poisson=%v: no packets emitted", poisson)
		}
	}
}

// TestFlowSetPoissonRate: exponential pacing converges on the mean
// rate over a long window.
func TestFlowSetPoissonRate(t *testing.T) {
	sim, h1, _ := flowSetTopoFull(t, true)
	const n, pps, dur = 10, 200.0, 10.0
	fs := StartFlowSet(sim, h1, FlowSetConfig{
		Specs: flowSpecs(n, pps), Start: 0, Stop: dur, Seed: 3, Poisson: true,
	})
	sim.RunUntil(dur + 1)
	want := n * pps * dur
	if got := float64(fs.Sent); got < 0.9*want || got > 1.1*want {
		t.Fatalf("poisson emitted %.0f packets, want about %.0f", got, want)
	}
}

// TestFlowSetSingleEvent: the whole batch keeps exactly one scheduler
// event pending, however many flows it drives.
func TestFlowSetSingleEvent(t *testing.T) {
	sim, h1, _ := flowSetTopoFull(t, true)
	StartFlowSet(sim, h1, FlowSetConfig{Specs: flowSpecs(1000, 10), Start: 0, Stop: 5, Seed: 1})
	if got := sim.Pending(); got != 1 {
		t.Fatalf("flow set pends %d events, want 1", got)
	}
	sim.RunUntil(0.5)
	// Mid-run: the one re-armed step event plus any in-flight
	// tx/deliver events; the step event itself never multiplies.
	if got := sim.Pending(); got > 4 {
		t.Fatalf("flow set pends %d events mid-run", got)
	}
}

func TestFlowSetStop(t *testing.T) {
	sim, h1, _ := flowSetTopoFull(t, true)
	fs := StartFlowSet(sim, h1, FlowSetConfig{Specs: flowSpecs(5, 100), Start: 0, Stop: 10, Seed: 1})
	sim.RunUntil(1)
	atStop := fs.Sent
	fs.Stop()
	sim.RunUntil(10)
	if fs.Sent != atStop {
		t.Fatalf("stopped flow set kept emitting: %d -> %d", atStop, fs.Sent)
	}
}

// TestPacketPoolRecycles: with the pool on, a long run recycles a
// bounded working set instead of allocating per packet.
func TestPacketPoolRecycles(t *testing.T) {
	sim, h1, h2 := flowSetTopoFull(t, true)
	fs := StartFlowSet(sim, h1, FlowSetConfig{Specs: flowSpecs(10, 1000), Start: 0, Stop: 2, Seed: 5})
	sim.RunUntil(3)
	if fs.Sent < 10000 {
		t.Fatalf("sent only %d", fs.Sent)
	}
	if h2.RxPackets != fs.Sent {
		t.Fatalf("rx %d != sent %d", h2.RxPackets, fs.Sent)
	}
	if sim.PacketsPooled == 0 {
		t.Fatal("pool never recycled a packet")
	}
	if sim.PacketsAllocated > 64 {
		t.Fatalf("allocated %d fresh packets for a bounded in-flight window", sim.PacketsAllocated)
	}
}

// TestPacketPoolDisabledByDefault preserves the historical behaviour:
// hand-built sims never see recycled pointers.
func TestPacketPoolDisabledByDefault(t *testing.T) {
	sim, h1, h2 := flowSetTopoFull(t, false)
	var seen map[*Packet]bool
	h2.OnReceive = func(pkt *Packet) {
		if seen == nil {
			seen = make(map[*Packet]bool)
		}
		if seen[pkt] {
			t.Fatal("pointer reused without pool")
		}
		seen[pkt] = true
	}
	StartFlowSet(sim, h1, FlowSetConfig{Specs: flowSpecs(4, 100), Start: 0, Stop: 1, Seed: 2})
	sim.RunUntil(2)
	if sim.PacketsPooled != 0 {
		t.Fatalf("pooled %d packets with pool disabled", sim.PacketsPooled)
	}
}

// TestPacketPoolFloodCopies: flood copies must survive the original's
// release — each egress owns an independent packet.
func TestPacketPoolFloodCopies(t *testing.T) {
	sim := NewSim()
	sim.EnablePacketPool()
	h1 := NewHost(sim, "h1", MustAddr("10.0.0.1"))
	h2 := NewHost(sim, "h2", MustAddr("10.0.0.2"))
	h3 := NewHost(sim, "h3", MustAddr("10.0.0.3"))
	sw := NewSwitch(sim, "s1")
	Connect(sim, h1, 1, sw, 1, 1e9, 1e-6, 0)
	Connect(sim, sw, 2, h2, 1, 1e9, 1e-6, 0)
	Connect(sim, sw, 3, h3, 1, 1e9, 1e-6, 0)
	sw.InstallRule(Rule{Action: Action{Kind: ActionFlood}})
	flow := FiveTuple{Src: h1.Addr, Dst: h2.Addr, SrcPort: 1, DstPort: 2, Proto: ProtoUDP}
	for i := 0; i < 100; i++ {
		h1.Send(flow, 100)
	}
	sim.Run()
	if h2.RxPackets != 100 || h3.RxPackets != 100 {
		t.Fatalf("flood delivered %d/%d, want 100/100", h2.RxPackets, h3.RxPackets)
	}
}

// TestQueueRingWraps exercises Pop/Push across the ring boundary.
func TestQueueRingWraps(t *testing.T) {
	var q Queue
	next := uint64(0)
	popped := uint64(0)
	for round := 0; round < 100; round++ {
		for i := 0; i < 7; i++ {
			q.Push(&Packet{ID: next})
			next++
		}
		for i := 0; i < 5; i++ {
			p := q.Pop()
			if p == nil || p.ID != popped {
				t.Fatalf("round %d: popped %v, want ID %d", round, p, popped)
			}
			popped++
		}
	}
	if q.Len() != 200 {
		t.Fatalf("len = %d, want 200", q.Len())
	}
	for q.Len() > 0 {
		if p := q.Pop(); p.ID != popped {
			t.Fatalf("drain popped %d, want %d", p.ID, popped)
		} else {
			popped++
		}
	}
	if popped != next {
		t.Fatalf("popped %d of %d", popped, next)
	}
}

// TestTrafficSteadyStateAllocs is the engine's headline gate: once the
// pool and heaps are warm, pushing a packet host -> switch -> host
// allocates nothing.
func TestTrafficSteadyStateAllocs(t *testing.T) {
	sim, h1, _ := flowSetTopoFull(t, true)
	StartFlowSet(sim, h1, FlowSetConfig{Specs: flowSpecs(64, 1000), Start: 0, Stop: 1e6, Seed: 9})
	sim.RunUntil(1) // warm pool, event heap, queue rings
	target := 1.0
	allocs := testing.AllocsPerRun(2000, func() {
		target += 1e-3
		sim.RunUntil(target)
	})
	if allocs != 0 {
		t.Fatalf("steady-state traffic allocates %.2f/op", allocs)
	}
}

// TestSchedulerSteadyStateAllocs: scheduling and dispatching a typed
// event on a warm heap is allocation-free.
func TestSchedulerSteadyStateAllocs(t *testing.T) {
	sim := NewSim()
	fn := func() {}
	for i := 0; i < 1024; i++ {
		sim.Schedule(float64(i), fn)
	}
	sim.Run()
	allocs := testing.AllocsPerRun(2000, func() {
		sim.Schedule(sim.Now()+1, fn)
		sim.Run()
	})
	if allocs != 0 {
		t.Fatalf("steady-state scheduling allocates %.2f/op", allocs)
	}
}

// BenchmarkScheduler measures one schedule+dispatch round trip on a
// warm heap. CI gates it at 0 allocs/op.
func BenchmarkScheduler(b *testing.B) {
	sim := NewSim()
	fn := func() {}
	for i := 0; i < 1024; i++ {
		sim.Schedule(float64(i), fn)
	}
	sim.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Schedule(sim.Now()+1, fn)
		sim.Run()
	}
}

// BenchmarkTrafficDrive measures the full per-packet forwarding path
// (flow-set emit -> host send -> switch lookup -> deliver) with the
// packet pool on. CI gates it at 0 allocs/op.
func BenchmarkTrafficDrive(b *testing.B) {
	sim, h1, h2 := flowSetTopoFull(b, true)
	const totalPPS = 256 * 1000.0
	StartFlowSet(sim, h1, FlowSetConfig{Specs: flowSpecs(256, 1000), Start: 0, Stop: 1e9, Seed: 13})
	sim.RunUntil(1) // warm
	dt := 1 / totalPPS
	target := 1.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target += dt
		sim.RunUntil(target)
	}
	b.StopTimer()
	if h2.RxPackets == 0 {
		b.Fatal("no traffic flowed")
	}
}
