package netsim

import "math"

// FlowSetConfig describes a batch of flows driven by one scheduler
// event.
type FlowSetConfig struct {
	// Specs lists the flows. Size <= 0 falls back to
	// DefaultPacketSize.
	Specs []FlowSpec
	// Start and Stop bound emission in virtual seconds.
	Start, Stop float64
	// Seed drives the per-flow phase jitter and (when Poisson) the
	// inter-arrival draws.
	Seed int64
	// Poisson switches from fixed pacing to exponential
	// inter-arrivals at each flow's mean rate.
	Poisson bool
}

// fsFlow is one flow's scheduling state inside a FlowSet.
type fsFlow struct {
	next     float64 // next emission time (heap key)
	phase    float64 // first emission time, for drift-free CBR pacing
	interval float64 // 1/PPS
	pps      float64
	count    uint64 // packets emitted
	rng      uint64 // splitmix64 state for Poisson draws
	flow     FiveTuple
	size     int
}

// FlowSet drives N concurrent flows from a single scheduled event.
// Where StartMix arms one self-rescheduling closure per flow — N
// pending events and N live closures for N flows — a FlowSet keeps a
// value-typed min-heap of per-flow next-emission times and keeps
// exactly one event in the simulator, re-armed with one pre-bound
// method value. At 10^6 flows that is the difference between the event
// heap holding a million closures and holding one.
type FlowSet struct {
	// Sent counts packets emitted so far.
	Sent uint64

	sim     *Sim
	h       *Host
	stop    float64
	poisson bool
	stopped bool
	flows   []fsFlow
	stepFn  func() // fs.step bound once; reused for every re-arm
}

// StartFlowSet launches the batch. All emission times are derived
// deterministically from cfg.Seed, so runs replay exactly.
func StartFlowSet(sim *Sim, h *Host, cfg FlowSetConfig) *FlowSet {
	fs := &FlowSet{sim: sim, h: h, stop: cfg.Stop, poisson: cfg.Poisson}
	fs.stepFn = fs.step
	fs.flows = make([]fsFlow, 0, len(cfg.Specs))
	seed := uint64(cfg.Seed)
	for i, sp := range cfg.Specs {
		if sp.PPS <= 0 {
			panic("netsim: FlowSet rates must be positive")
		}
		size := sp.Size
		if size <= 0 {
			size = DefaultPacketSize
		}
		f := fsFlow{
			interval: 1 / sp.PPS,
			pps:      sp.PPS,
			rng:      seed + uint64(i)*0x9e3779b97f4a7c15,
			flow:     sp.Flow,
			size:     size,
		}
		// Deterministic phase jitter spreads first emissions across
		// one interval so CBR flows do not fire in lockstep bursts.
		if cfg.Poisson {
			f.phase = cfg.Start + f.exp()
		} else {
			f.phase = cfg.Start + f.uniform()*f.interval
		}
		if f.phase >= cfg.Stop {
			continue
		}
		f.next = f.phase
		fs.flows = append(fs.flows, f)
		fs.siftUp(len(fs.flows) - 1)
	}
	if len(fs.flows) > 0 {
		sim.Schedule(fs.flows[0].next, fs.stepFn)
	}
	return fs
}

// Stop halts the batch before its natural end.
func (fs *FlowSet) Stop() { fs.stopped = true }

// Active returns the number of flows still emitting.
func (fs *FlowSet) Active() int { return len(fs.flows) }

// step emits every flow due at the current time and re-arms one event
// at the next due time. This is the entire per-packet scheduling path:
// a heap sift and a pooled Send, no allocations.
func (fs *FlowSet) step() {
	if fs.stopped {
		return
	}
	now := fs.sim.now
	for len(fs.flows) > 0 && fs.flows[0].next <= now {
		f := &fs.flows[0]
		fs.h.Send(f.flow, f.size)
		fs.Sent++
		f.count++
		var next float64
		if fs.poisson {
			next = now + f.exp()
		} else {
			// Counter-based timing avoids drift from accumulating
			// the interval in floating point.
			next = f.phase + float64(f.count)*f.interval
		}
		if next >= fs.stop {
			fs.removeRoot()
			continue
		}
		f.next = next
		fs.siftDown(0)
	}
	if len(fs.flows) > 0 {
		fs.sim.Schedule(fs.flows[0].next, fs.stepFn)
	}
}

// uniform draws the next value in [0,1) from the flow's splitmix64
// stream.
func (f *fsFlow) uniform() float64 {
	f.rng += 0x9e3779b97f4a7c15
	x := f.rng
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// exp draws an exponential inter-arrival at the flow's mean rate.
func (f *fsFlow) exp() float64 {
	u := f.uniform()
	return -math.Log(1-u) / f.pps
}

// Heap of fsFlow by next emission time.

func (fs *FlowSet) siftUp(i int) {
	s := fs.flows
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].next <= s[i].next {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (fs *FlowSet) siftDown(i int) {
	s := fs.flows
	n := len(s)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		min := left
		if right := left + 1; right < n && s[right].next < s[left].next {
			min = right
		}
		if s[i].next <= s[min].next {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
}

func (fs *FlowSet) removeRoot() {
	s := fs.flows
	n := len(s) - 1
	s[0] = s[n]
	fs.flows = s[:n]
	fs.siftDown(0)
}
