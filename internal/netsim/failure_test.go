package netsim

import "testing"

func TestLinkDownDropsTraffic(t *testing.T) {
	sim := NewSim()
	h1 := NewHost(sim, "h1", MustAddr("10.0.0.1"))
	h2 := NewHost(sim, "h2", MustAddr("10.0.0.2"))
	pa, _ := Connect(sim, h1, 1, h2, 1, 1e6, 0.001, 10)
	// Five packets delivered, then the link dies, then five more
	// are attempted.
	StartCBR(sim, h1, tuple(1, 2), 100, 1500, 0, 0.05)
	sim.After(0.2, func() { pa.SetDown(true) })
	sim.After(0.3, func() {
		for i := 0; i < 5; i++ {
			h1.Send(tuple(1, 2), 1500)
		}
	})
	sim.Run()
	if h2.RxPackets != 5 {
		t.Errorf("delivered = %d, want only the pre-failure 5", h2.RxPackets)
	}
	if !pa.Down() {
		t.Error("port should report down")
	}
}

func TestLinkDownFlushesQueue(t *testing.T) {
	sim := NewSim()
	h1 := NewHost(sim, "h1", MustAddr("10.0.0.1"))
	h2 := NewHost(sim, "h2", MustAddr("10.0.0.2"))
	pa, _ := Connect(sim, h1, 1, h2, 1, 1e5, 0, 100) // slow: packets queue
	for i := 0; i < 20; i++ {
		h1.Send(tuple(1, 2), 1500)
	}
	sim.After(0.15, func() { pa.SetDown(true) }) // ~1 pkt delivered by then
	sim.Run()
	if h2.RxPackets >= 20 {
		t.Errorf("delivered = %d; queue should have been flushed", h2.RxPackets)
	}
	if pa.LostOnDown() == 0 {
		t.Error("flushed packets not counted")
	}
}

func TestLinkDownKillsInFlightFrame(t *testing.T) {
	sim := NewSim()
	h1 := NewHost(sim, "h1", MustAddr("10.0.0.1"))
	h2 := NewHost(sim, "h2", MustAddr("10.0.0.2"))
	pa, _ := Connect(sim, h1, 1, h2, 1, 1e9, 0.5, 0) // long wire
	h1.Send(tuple(1, 2), 100)
	sim.After(0.1, func() { pa.SetDown(true) }) // cut while propagating
	sim.Run()
	if h2.RxPackets != 0 {
		t.Errorf("in-flight frame survived the cut: rx=%d", h2.RxPackets)
	}
}

func TestLinkUpRestoresService(t *testing.T) {
	sim := NewSim()
	h1 := NewHost(sim, "h1", MustAddr("10.0.0.1"))
	h2 := NewHost(sim, "h2", MustAddr("10.0.0.2"))
	pa, _ := Connect(sim, h1, 1, h2, 1, 1e9, 0, 0)
	pa.SetDown(true)
	h1.Send(tuple(1, 2), 100)
	sim.After(1, func() { pa.SetDown(false) })
	sim.After(2, func() { h1.Send(tuple(1, 2), 100) })
	sim.Run()
	if h2.RxPackets != 1 {
		t.Errorf("rx = %d, want 1 after link restored", h2.RxPackets)
	}
}

func TestPortStatusNotification(t *testing.T) {
	sim := NewSim()
	sw := NewSwitch(sim, "s1")
	h := NewHost(sim, "h", MustAddr("10.0.0.1"))
	_, pb := Connect(sim, h, 1, sw, 3, 1e9, 0, 0)
	var events []int
	var states []bool
	sw.OnPortState = func(port int, up bool) {
		events = append(events, port)
		states = append(states, up)
	}
	pb.SetDown(true)
	pb.SetDown(false)
	if len(events) != 2 || events[0] != 3 || states[0] != false || states[1] != true {
		t.Errorf("events=%v states=%v", events, states)
	}
}
