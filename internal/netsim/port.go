package netsim

// Node is anything that can terminate a link: a host or a switch.
type Node interface {
	// NodeName returns the unique node name.
	NodeName() string
	// Receive handles a packet arriving on the given local port.
	Receive(pkt *Packet, inPort int)
}

// Queue is a drop-tail FIFO of packets with a fixed capacity,
// counting drops and tracking a high-water mark. Its occupancy is what
// the paper's switches translate into queue tones (Section 6). The
// buffer is a ring: pushes and pops recycle the same backing array, so
// a steady-state queue allocates nothing (the old slice-slide
// implementation leaked capacity forward and reallocated under
// sustained load).
type Queue struct {
	// Capacity is the maximum number of queued packets; zero means
	// unbounded.
	Capacity int

	buf       []*Packet
	head, n   int
	drops     uint64
	enqueued  uint64
	highWater int
}

// Len returns the current occupancy in packets.
func (q *Queue) Len() int { return q.n }

// Drops returns the number of packets rejected by a full queue.
func (q *Queue) Drops() uint64 { return q.drops }

// Enqueued returns the total number of packets accepted.
func (q *Queue) Enqueued() uint64 { return q.enqueued }

// HighWater returns the maximum occupancy ever observed.
func (q *Queue) HighWater() int { return q.highWater }

// Push appends a packet, reporting whether it was accepted.
func (q *Queue) Push(p *Packet) bool {
	if q.Capacity > 0 && q.n >= q.Capacity {
		q.drops++
		return false
	}
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = p
	q.n++
	q.enqueued++
	if q.n > q.highWater {
		q.highWater = q.n
	}
	return true
}

// grow doubles the ring, unwrapping it into the new array.
func (q *Queue) grow() {
	size := 2 * len(q.buf)
	if size == 0 {
		size = 8
	}
	buf := make([]*Packet, size)
	for i := 0; i < q.n; i++ {
		buf[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = buf
	q.head = 0
}

// Pop removes and returns the head packet, or nil when empty.
func (q *Queue) Pop() *Packet {
	if q.n == 0 {
		return nil
	}
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return p
}

// Port is one directed endpoint of a link: it transmits packets from
// its owner toward the peer port's owner, serialising at Rate and
// then propagating with Latency. Each Port has its own output queue.
type Port struct {
	// Owner is the node this port belongs to.
	Owner Node
	// Index is the port number on the owner (1-based, OpenFlow
	// style).
	Index int
	// RateBps is the line rate in bits per second.
	RateBps float64
	// Latency is the propagation delay in seconds.
	Latency float64
	// Out is the output queue feeding the transmitter.
	Out Queue

	sim  *Sim
	peer *Port
	busy bool
	down bool
	// inFlight is the packet currently being serialised (between
	// transmitNext and txDone).
	inFlight   *Packet
	lostOnDown uint64
}

// Peer returns the port at the far end of the link, or nil when
// unconnected.
func (p *Port) Peer() *Port { return p.peer }

// Send enqueues a packet for transmission; if the queue is full the
// packet is dropped (counted in Out.Drops). Transmission is
// store-and-forward: serialisation delay Size*8/RateBps, then Latency.
// Send takes ownership of the packet: dropped packets return to the
// simulator's pool.
func (p *Port) Send(pkt *Packet) {
	if p.peer == nil || p.down {
		p.sim.releasePacket(pkt) // unplugged or downed port: packet vanishes
		return
	}
	if !p.Out.Push(pkt) {
		p.sim.releasePacket(pkt)
		return
	}
	if !p.busy {
		p.transmitNext()
	}
}

// transmitNext starts serialising the head-of-queue packet. The two
// steps of the traversal — wire free at the end of serialisation,
// arrival after propagation — are typed events, so the per-packet path
// schedules no closures.
func (p *Port) transmitNext() {
	pkt := p.Out.Pop()
	if pkt == nil {
		p.busy = false
		return
	}
	p.busy = true
	tx := 0.0
	if p.RateBps > 0 {
		tx = float64(pkt.Size) * 8 / p.RateBps
	}
	p.inFlight = pkt
	p.sim.scheduleTxDone(p.sim.now+tx, p)
}

// txDone fires when the wire finishes serialising: the frame enters
// propagation and the next queued packet starts.
func (p *Port) txDone() {
	pkt := p.inFlight
	p.inFlight = nil
	p.sim.scheduleDeliver(p.sim.now+p.Latency, p, pkt)
	p.transmitNext()
}

// deliver lands a frame at the far end.
func (p *Port) deliver(pkt *Packet) {
	if p.down {
		p.sim.releasePacket(pkt) // link died while the frame was in flight
		return
	}
	p.peer.Owner.Receive(pkt, p.peer.Index)
}

// Connect wires two nodes with a full-duplex link of the given rate
// and propagation delay, using the given port numbers on each side.
// It returns the two directed ports (a-side, b-side). queueCap bounds
// each direction's output queue (0 = unbounded).
func Connect(sim *Sim, a Node, aPort int, b Node, bPort int, rateBps, latency float64, queueCap int) (*Port, *Port) {
	pa := &Port{Owner: a, Index: aPort, RateBps: rateBps, Latency: latency, sim: sim}
	pb := &Port{Owner: b, Index: bPort, RateBps: rateBps, Latency: latency, sim: sim}
	pa.Out.Capacity = queueCap
	pb.Out.Capacity = queueCap
	pa.peer = pb
	pb.peer = pa
	if ap, ok := a.(porter); ok {
		ap.attachPort(pa)
	}
	if bp, ok := b.(porter); ok {
		bp.attachPort(pb)
	}
	return pa, pb
}

// porter is implemented by nodes that keep a port registry.
type porter interface {
	attachPort(*Port)
}
