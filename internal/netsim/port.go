package netsim

// Node is anything that can terminate a link: a host or a switch.
type Node interface {
	// NodeName returns the unique node name.
	NodeName() string
	// Receive handles a packet arriving on the given local port.
	Receive(pkt *Packet, inPort int)
}

// Queue is a drop-tail FIFO of packets with a fixed capacity,
// counting drops and tracking a high-water mark. Its occupancy is what
// the paper's switches translate into queue tones (Section 6).
type Queue struct {
	// Capacity is the maximum number of queued packets; zero means
	// unbounded.
	Capacity int

	pkts      []*Packet
	drops     uint64
	enqueued  uint64
	highWater int
}

// Len returns the current occupancy in packets.
func (q *Queue) Len() int { return len(q.pkts) }

// Drops returns the number of packets rejected by a full queue.
func (q *Queue) Drops() uint64 { return q.drops }

// Enqueued returns the total number of packets accepted.
func (q *Queue) Enqueued() uint64 { return q.enqueued }

// HighWater returns the maximum occupancy ever observed.
func (q *Queue) HighWater() int { return q.highWater }

// Push appends a packet, reporting whether it was accepted.
func (q *Queue) Push(p *Packet) bool {
	if q.Capacity > 0 && len(q.pkts) >= q.Capacity {
		q.drops++
		return false
	}
	q.pkts = append(q.pkts, p)
	q.enqueued++
	if len(q.pkts) > q.highWater {
		q.highWater = len(q.pkts)
	}
	return true
}

// Pop removes and returns the head packet, or nil when empty.
func (q *Queue) Pop() *Packet {
	if len(q.pkts) == 0 {
		return nil
	}
	p := q.pkts[0]
	q.pkts[0] = nil
	q.pkts = q.pkts[1:]
	return p
}

// Port is one directed endpoint of a link: it transmits packets from
// its owner toward the peer port's owner, serialising at Rate and
// then propagating with Latency. Each Port has its own output queue.
type Port struct {
	// Owner is the node this port belongs to.
	Owner Node
	// Index is the port number on the owner (1-based, OpenFlow
	// style).
	Index int
	// RateBps is the line rate in bits per second.
	RateBps float64
	// Latency is the propagation delay in seconds.
	Latency float64
	// Out is the output queue feeding the transmitter.
	Out Queue

	sim        *Sim
	peer       *Port
	busy       bool
	down       bool
	lostOnDown uint64
}

// Peer returns the port at the far end of the link, or nil when
// unconnected.
func (p *Port) Peer() *Port { return p.peer }

// Send enqueues a packet for transmission; if the queue is full the
// packet is dropped (counted in Out.Drops). Transmission is
// store-and-forward: serialisation delay Size*8/RateBps, then Latency.
func (p *Port) Send(pkt *Packet) {
	if p.peer == nil || p.down {
		return // unplugged or downed port: packet vanishes
	}
	if !p.Out.Push(pkt) {
		return
	}
	if !p.busy {
		p.transmitNext()
	}
}

func (p *Port) transmitNext() {
	pkt := p.Out.Pop()
	if pkt == nil {
		p.busy = false
		return
	}
	p.busy = true
	tx := 0.0
	if p.RateBps > 0 {
		tx = float64(pkt.Size) * 8 / p.RateBps
	}
	peer := p.peer
	latency := p.Latency
	p.sim.After(tx, func() {
		// Wire is free again: start the next packet.
		p.transmitNext()
		p.sim.After(latency, func() {
			if p.down {
				return // link died while the frame was in flight
			}
			peer.Owner.Receive(pkt, peer.Index)
		})
	})
}

// Connect wires two nodes with a full-duplex link of the given rate
// and propagation delay, using the given port numbers on each side.
// It returns the two directed ports (a-side, b-side). queueCap bounds
// each direction's output queue (0 = unbounded).
func Connect(sim *Sim, a Node, aPort int, b Node, bPort int, rateBps, latency float64, queueCap int) (*Port, *Port) {
	pa := &Port{Owner: a, Index: aPort, RateBps: rateBps, Latency: latency, sim: sim}
	pb := &Port{Owner: b, Index: bPort, RateBps: rateBps, Latency: latency, sim: sim}
	pa.Out.Capacity = queueCap
	pb.Out.Capacity = queueCap
	pa.peer = pb
	pb.peer = pa
	if ap, ok := a.(porter); ok {
		ap.attachPort(pa)
	}
	if bp, ok := b.(porter); ok {
		bp.attachPort(pb)
	}
	return pa, pb
}

// porter is implemented by nodes that keep a port registry.
type porter interface {
	attachPort(*Port)
}
