package netsim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSimOrdering(t *testing.T) {
	s := NewSim()
	var got []int
	s.Schedule(2, func() { got = append(got, 2) })
	s.Schedule(1, func() { got = append(got, 1) })
	s.Schedule(3, func() { got = append(got, 3) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if s.Now() != 3 {
		t.Errorf("now = %g", s.Now())
	}
}

func TestSimEqualTimesFIFO(t *testing.T) {
	s := NewSim()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(1, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-time events out of order: %v", got)
		}
	}
}

func TestSimPastSchedulingClamps(t *testing.T) {
	s := NewSim()
	s.RunUntil(5)
	fired := false
	s.Schedule(1, func() {
		fired = true
		if s.Now() != 5 {
			t.Errorf("past event ran at %g, want clamp to 5", s.Now())
		}
	})
	s.Run()
	if !fired {
		t.Error("past event never fired")
	}
}

func TestSimRunUntilAdvancesClock(t *testing.T) {
	s := NewSim()
	n := s.RunUntil(10)
	if n != 0 || s.Now() != 10 {
		t.Errorf("n=%d now=%g", n, s.Now())
	}
}

func TestSimAfter(t *testing.T) {
	s := NewSim()
	var at float64
	s.Schedule(2, func() {
		s.After(3, func() { at = s.Now() })
	})
	s.Run()
	if at != 5 {
		t.Errorf("After fired at %g, want 5", at)
	}
}

func TestSimEveryAndStop(t *testing.T) {
	s := NewSim()
	var times []float64
	var tick *Ticker
	tick = s.Every(1, 0.5, func(now float64) {
		times = append(times, now)
		if len(times) == 4 {
			tick.Stop()
		}
	})
	s.RunUntil(100)
	if len(times) != 4 {
		t.Fatalf("ticks = %v", times)
	}
	want := []float64{1, 1.5, 2, 2.5}
	for i := range want {
		if !AlmostEqual(times[i], want[i], 1e-9) {
			t.Errorf("tick %d at %g, want %g", i, times[i], want[i])
		}
	}
	if s.Pending() != 0 {
		t.Errorf("pending = %d after stop", s.Pending())
	}
}

func TestSimEveryPanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSim().Every(0, 0, func(float64) {})
}

func TestSimEventOrderProperty(t *testing.T) {
	// Property: events fire in nondecreasing time order regardless of
	// scheduling order.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSim()
		var fired []float64
		n := 50
		times := make([]float64, n)
		for i := range times {
			times[i] = rng.Float64() * 100
		}
		for _, at := range times {
			at := at
			s.Schedule(at, func() { fired = append(fired, at) })
		}
		s.Run()
		if len(fired) != n {
			return false
		}
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
