package netsim

import (
	"math"
	"testing"
)

func pipe(t *testing.T, rate float64) (*Sim, *Host, *Host) {
	t.Helper()
	sim := NewSim()
	h1 := NewHost(sim, "h1", MustAddr("10.0.0.1"))
	h2 := NewHost(sim, "h2", MustAddr("10.0.0.2"))
	Connect(sim, h1, 1, h2, 1, rate, 0, 0)
	return sim, h1, h2
}

func TestCBRRateAndWindow(t *testing.T) {
	sim, h1, h2 := pipe(t, 1e9)
	src := StartCBR(sim, h1, tuple(1, 2), 100, 1000, 1, 3)
	sim.RunUntil(10)
	if src.Sent != 200 {
		t.Errorf("sent = %d, want 200 (100 pps over 2 s)", src.Sent)
	}
	if h2.RxPackets != 200 {
		t.Errorf("rx = %d", h2.RxPackets)
	}
}

func TestCBRStop(t *testing.T) {
	sim, h1, _ := pipe(t, 1e9)
	src := StartCBR(sim, h1, tuple(1, 2), 1000, 100, 0, 100)
	sim.After(0.1, func() { src.Stop() })
	sim.RunUntil(1)
	if src.Sent < 90 || src.Sent > 110 {
		t.Errorf("sent = %d, want ~100 before stop", src.Sent)
	}
}

func TestCBRPanicsOnBadRate(t *testing.T) {
	sim, h1, _ := pipe(t, 1e9)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	StartCBR(sim, h1, tuple(1, 2), 0, 100, 0, 1)
}

func TestRampAccelerates(t *testing.T) {
	sim, h1, h2 := pipe(t, 1e9)
	var times []float64
	h2.OnReceive = func(*Packet) { times = append(times, sim.Now()) }
	StartRamp(sim, h1, tuple(1, 2), 10, 1000, 100, 0, 2)
	sim.RunUntil(3)
	if len(times) < 100 {
		t.Fatalf("too few packets: %d", len(times))
	}
	// Count arrivals per half: the second half must far outnumber
	// the first.
	var firstHalf, secondHalf int
	for _, at := range times {
		if at < 1 {
			firstHalf++
		} else {
			secondHalf++
		}
	}
	// A linear 10->1000 pps ramp delivers ~2.9x more in the second
	// half (integral of the rate).
	if float64(secondHalf) < float64(firstHalf)*2.5 {
		t.Errorf("ramp not accelerating: %d then %d", firstHalf, secondHalf)
	}
}

func TestRampPanicsOnBadArgs(t *testing.T) {
	sim, h1, _ := pipe(t, 1e9)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	StartRamp(sim, h1, tuple(1, 2), 10, 100, 100, 5, 5)
}

func TestPoissonMeanRateAndDeterminism(t *testing.T) {
	sim, h1, _ := pipe(t, 1e9)
	src := StartPoisson(sim, h1, tuple(1, 2), 500, 100, 0, 10, 42)
	sim.RunUntil(10)
	if src.Sent < 4000 || src.Sent > 6000 {
		t.Errorf("sent = %d, want ~5000", src.Sent)
	}
	// Determinism: re-run identically.
	sim2, h1b, _ := pipe(t, 1e9)
	src2 := StartPoisson(sim2, h1b, tuple(1, 2), 500, 100, 0, 10, 42)
	sim2.RunUntil(10)
	if src.Sent != src2.Sent {
		t.Errorf("same seed, different counts: %d vs %d", src.Sent, src2.Sent)
	}
}

func TestPortScanCoversRange(t *testing.T) {
	sim, h1, h2 := pipe(t, 1e9)
	seen := map[uint16]bool{}
	h2.OnReceive = func(p *Packet) { seen[p.Flow.DstPort] = true }
	StartPortScan(sim, h1, tuple(4000, 0), 100, 64, 0.01, 0)
	sim.RunUntil(2)
	if len(seen) != 64 {
		t.Fatalf("scanned ports = %d, want 64", len(seen))
	}
	for p := uint16(100); p < 164; p++ {
		if !seen[p] {
			t.Errorf("port %d not scanned", p)
		}
	}
}

func TestStartMixAndOfferedLoad(t *testing.T) {
	sim, h1, h2 := pipe(t, 1e9)
	specs := []FlowSpec{
		{Flow: tuple(1, 80), PPS: 100, Size: 1000},
		{Flow: tuple(2, 81), PPS: 10}, // default size
	}
	if got := OfferedLoad(specs); got != 100*1000*8+10*DefaultPacketSize*8 {
		t.Errorf("offered load = %g", got)
	}
	srcs := StartMix(sim, h1, specs, 0, 5, 99)
	sim.RunUntil(5)
	if len(srcs) != 2 {
		t.Fatal("wrong source count")
	}
	if srcs[0].Sent < 300 || srcs[1].Sent > srcs[0].Sent {
		t.Errorf("mix rates look wrong: %d vs %d", srcs[0].Sent, srcs[1].Sent)
	}
	if h2.RxPackets != srcs[0].Sent+srcs[1].Sent {
		t.Errorf("rx %d != sent %d", h2.RxPackets, srcs[0].Sent+srcs[1].Sent)
	}
}

func TestRateToPPS(t *testing.T) {
	if got := RateToPPS(12e6, 1500); math.Abs(got-1000) > 1e-9 {
		t.Errorf("RateToPPS = %g, want 1000", got)
	}
}
